"""Incrementally updated Ring hashing.

Algorithm 3's implementation notes offer two maintenance strategies:
repopulate the whole ring per backend change (what :class:`RingHash`
does, lazily), or "update only the successors/predecessors that are
affected by the backend change".  This class implements the latter: each
event touches only the affected arc of the merged ring --
O(V log R + affected) per event instead of O(R log R) -- which matters
when backend churn is frequent relative to lookups.

Invariants maintained in place (identical to POPULATERING's output):

- ``_positions``/``_entries``: the merged ring; a working vnode at ``p``
  carries ``(owner, False)``; a horizon vnode carries
  ``(working successor of p, True)``;
- ``_w_pos``/``_w_srv``: the working vnodes alone, sorted, for successor
  queries.

Equivalence with the rebuild-from-scratch ring is asserted by the
differential tests in ``tests/test_ch_ring_incremental.py``.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, List

from repro.ch.base import BackendError, Name
from repro.ch.ring import RingHash


class IncrementalRingHash(RingHash):
    """Ring hashing with per-event incremental maintenance."""

    def __init__(
        self,
        working: Iterable[Name] = (),
        horizon: Iterable[Name] = (),
        virtual_nodes: int = 100,
    ):
        self._w_pos: List[int] = []
        self._w_srv: List[Name] = []
        super().__init__(working, horizon, virtual_nodes=virtual_nodes)
        self._rebuild()

    # --------------------------------------------------------- plumbing
    def _rebuild(self) -> None:
        super()._rebuild()
        pairs = sorted(
            (pos, name)
            for name, positions in self._working.items()
            for pos in positions
        )
        self._w_pos = [pos for pos, _ in pairs]
        self._w_srv = [name for _, name in pairs]

    def _ensure_clean(self) -> None:
        if self._dirty:
            self._rebuild()

    def _merged_index(self, pos: int) -> int:
        index = bisect_left(self._positions, pos)
        if index >= len(self._positions) or self._positions[index] != pos:
            raise BackendError("ring state corrupt: vnode position missing")
        return index

    def _arc_indices(self, after: int, upto: int) -> Iterable[int]:
        """Merged-ring indices with position in the arc ``(after, upto)``."""
        lo = bisect_right(self._positions, after)
        hi = bisect_left(self._positions, upto)
        if after < upto:
            return range(lo, hi)
        return list(range(lo, len(self._positions))) + list(range(0, hi))

    # --------------------------------------------------------- mutation
    def add_working(self, name: Name) -> None:
        self._ensure_clean()
        positions = self._horizon.pop(name, None)
        if positions is None:
            raise BackendError(f"server {name!r} is not in the horizon")
        self._working[name] = positions
        if not self._w_pos:
            # Transition out of an empty working set: horizon vnodes are
            # absent from the merged ring; rebuild from scratch lazily.
            self._dirty = True
            return
        self._kernel_dirty = True  # merged ring edited in place below
        for pos in sorted(positions):
            index = self._merged_index(pos)
            if self._w_pos:
                predecessor = self._w_pos[bisect_left(self._w_pos, pos) - 1]
                arc = self._arc_indices(predecessor, pos)
            else:
                arc = [t for t in range(len(self._positions)) if t != index]
            # Horizon vnodes in the arc now have this vnode as successor.
            for t in arc:
                _, tracked = self._entries[t]
                if tracked:
                    self._entries[t] = (name, True)
            self._entries[index] = (name, False)
            insert_at = bisect_left(self._w_pos, pos)
            self._w_pos.insert(insert_at, pos)
            self._w_srv.insert(insert_at, name)

    def remove_working(self, name: Name) -> None:
        self._ensure_clean()
        positions = self._working.pop(name, None)
        if positions is None:
            raise BackendError(f"server {name!r} is not working")
        self._horizon[name] = positions
        for pos in positions:
            index = bisect_left(self._w_pos, pos)
            del self._w_pos[index]
            del self._w_srv[index]
        if not self._w_pos:
            self._dirty = True  # empty working set: rebuild lazily
            return
        self._kernel_dirty = True  # merged ring edited in place below
        for pos in sorted(positions):
            index = self._merged_index(pos)
            successor = self._w_srv[bisect_right(self._w_pos, pos) % len(self._w_pos)]
            predecessor = self._w_pos[bisect_left(self._w_pos, pos) - 1]
            self._entries[index] = (successor, True)
            for t in self._arc_indices(predecessor, pos):
                _, tracked = self._entries[t]
                if tracked:
                    self._entries[t] = (successor, True)

    def add_horizon(self, name: Name) -> None:
        self._ensure_clean()
        if name in self._working or name in self._horizon:
            raise BackendError(f"server {name!r} already present")
        positions = self._placement(name)
        self._horizon[name] = positions
        self._union_dirty = True
        if not self._w_pos:
            self._dirty = True
            return
        self._kernel_dirty = True  # merged ring edited in place below
        for pos in positions:
            successor = self._w_srv[bisect_right(self._w_pos, pos) % len(self._w_pos)]
            index = bisect_left(self._positions, pos)
            self._positions.insert(index, pos)
            self._entries.insert(index, (successor, True))

    def remove_horizon(self, name: Name) -> None:
        self._ensure_clean()
        positions = self._horizon.pop(name, None)
        if positions is None:
            raise BackendError(f"server {name!r} is not in the horizon")
        self._union_dirty = True
        if not self._w_pos:
            self._dirty = True  # empty working set: merged ring is empty
            return
        self._kernel_dirty = True  # merged ring edited in place below
        for pos in positions:
            index = self._merged_index(pos)
            del self._positions[index]
            del self._entries[index]
