"""Consistent-hash interfaces.

Two levels of capability:

- :class:`ConsistentHash` -- the classic interface: a set of *working*
  servers ``W`` and a ``lookup`` mapping key-hashes to members of ``W``.
  This is all a full-CT load balancer needs.

- :class:`HorizonConsistentHash` -- the JET-enabling extension.  It also
  maintains the *horizon* set ``H`` of servers that may be added next
  (Section 2.3 of the paper) and answers the safety question of
  Theorem 4.4 -- "does CH(W, k) equal CH(W ∪ H, k)?" -- via
  :meth:`HorizonConsistentHash.lookup_with_safety`.

Server *names* may be any hashable value; simulations use small ints for
speed, examples use strings like ``"10.0.0.7:443"``.

All lookups take a pre-hashed 64-bit key (see :func:`repro.hashing.hash_key`)
rather than the raw connection identifier, so the (single) identifier hash is
shared between the CH module and the CT table.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import FrozenSet, Hashable, Tuple

import numpy as np

from repro.hashing.keyed import server_seed

Name = Hashable


class BackendError(ValueError):
    """Raised on invalid backend mutations (duplicate adds, unknown removes,
    additions that bypass the horizon contract, capacity exhaustion)."""


class ConsistentHash(ABC):
    """A consistent hash over a dynamic working set of servers."""

    @property
    @abstractmethod
    def working(self) -> FrozenSet[Name]:
        """The current working set ``W``."""

    @abstractmethod
    def lookup(self, key_hash: int) -> Name:
        """Return ``CH(W, k)`` for a pre-hashed key.

        Raises :class:`BackendError` if the working set is empty.
        """

    def lookup_batch(self, keys: np.ndarray) -> np.ndarray:
        """Return ``CH(W, k)`` for every key of a uint64 array.

        Batch calls are *pure lookups*: no CH mutates under them, so the
        result is defined to be exactly ``[lookup(k) for k in keys]`` --
        the scalar path is the executable spec, and the differential
        tests hold every override to it key-for-key.  This default is
        that scalar loop; numpy-friendly families (HRW, table-HRW,
        modulo, jump) override it with true vector code.  An empty batch
        returns an empty array and never raises.
        """
        found = [self.lookup(k) for k in np.asarray(keys, dtype=np.uint64).tolist()]
        out = np.empty(len(found), dtype=object)
        out[:] = found
        return out

    # --------------------------------------------------- index dataplane
    def backend_table(self) -> np.ndarray:
        """Canonical backend table: an object array of server names that
        :meth:`lookup_batch_idx` results index into.

        The table's *identity* is the cache key of the columnar dataplane
        (:class:`repro.core.indexing.BackendIndexer` translations): a CH
        must return the **same array object** while the backend is
        unchanged and a **new array** after any change -- never mutate a
        published table in place.  ``None`` entries (retired slots) are
        allowed; no lookup may ever resolve to one.  This default caches
        on the working set and serves the scalar-spec index path below;
        vectorized families override it with their kernel's own table.
        """
        cached = getattr(self, "_spec_table_cache", None)
        working = self.working
        if cached is not None and cached[0] == working:
            return cached[1]
        names = sorted(working, key=server_seed)
        table = np.empty(len(names), dtype=object)
        table[:] = names
        self._spec_table_cache = (working, table, {n: i for i, n in enumerate(names)})
        return table

    def _spec_table_index(self) -> dict:
        """Name -> index map for the default :meth:`backend_table`."""
        self.backend_table()
        return self._spec_table_cache[2]

    def lookup_batch_idx(self, keys: np.ndarray) -> np.ndarray:
        """Int32 indices into :meth:`backend_table`, one per key.

        The integer twin of :meth:`lookup_batch`: defined so that
        ``backend_table()[lookup_batch_idx(keys)]`` equals
        ``lookup_batch(keys)`` element for element.  This default resolves
        names through the scalar spec and maps them back -- families with
        a real kernel override it to return their internal indices
        directly, with no object-array traffic at all.
        """
        table_index = self._spec_table_index()
        found = self.lookup_batch(keys)
        return np.fromiter(
            (table_index[name] for name in found.tolist()),
            dtype=np.int32,
            count=len(found),
        )

    @abstractmethod
    def add(self, name: Name) -> None:
        """Add a server directly to the working set."""

    @abstractmethod
    def remove(self, name: Name) -> None:
        """Remove a server from the working set."""

    def __len__(self) -> int:
        return len(self.working)

    def __contains__(self, name: Name) -> bool:
        return name in self.working


class HorizonConsistentHash(ConsistentHash):
    """A consistent hash that additionally tracks the horizon set ``H``.

    The contract mirrors Algorithm 1 of the paper:

    - ``add_working(s)`` admits ``s`` from the horizon into ``W``
      (ADDWORKINGSERVER);
    - ``remove_working(s)`` moves ``s`` from ``W`` back into ``H``
      (REMOVEWORKINGSERVER);
    - ``add_horizon`` / ``remove_horizon`` manage ``H`` itself;
    - ``force_add_working(s)`` models an *unanticipated* addition that
      bypasses the horizon.  JET's safety guarantee does not cover it;
      the simulator uses it to reproduce the horizon-too-small PCC
      violations of Fig. 4.
    """

    @property
    @abstractmethod
    def horizon(self) -> FrozenSet[Name]:
        """The current horizon set ``H``."""

    @abstractmethod
    def lookup_with_safety(self, key_hash: int) -> Tuple[Name, bool]:
        """Return ``(CH(W, k), unsafe)``.

        ``unsafe`` is True iff ``CH(W, k) != CH(W ∪ H, k)``, i.e. the
        connection must be tracked to survive future horizon additions
        (Theorem 4.4).
        """

    def lookup_with_safety_batch(
        self, keys: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(destinations, unsafe_mask)`` for a uint64 key array.

        Defined as exactly ``[lookup_with_safety(k) for k in keys]`` (see
        :meth:`ConsistentHash.lookup_batch` for the batch contract); this
        default is that loop, vectorized families override it.
        """
        pairs = [
            self.lookup_with_safety(k)
            for k in np.asarray(keys, dtype=np.uint64).tolist()
        ]
        destinations = np.empty(len(pairs), dtype=object)
        if not pairs:
            return destinations, np.zeros(0, dtype=bool)
        found, unsafe = zip(*pairs)
        destinations[:] = found
        return destinations, np.array(unsafe, dtype=bool)

    def lookup_with_safety_batch_idx(
        self, keys: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(indices, unsafe_mask)``: the integer twin of
        :meth:`lookup_with_safety_batch` (indices into
        :meth:`~ConsistentHash.backend_table`).  Default resolves through
        the name path; vectorized families return their internal indices.
        """
        table_index = self._spec_table_index()
        found, unsafe = self.lookup_with_safety_batch(keys)
        indices = np.fromiter(
            (table_index[name] for name in found.tolist()),
            dtype=np.int32,
            count=len(found),
        )
        return indices, unsafe

    @abstractmethod
    def add_working(self, name: Name) -> None:
        """Move ``name`` from the horizon into the working set."""

    @abstractmethod
    def remove_working(self, name: Name) -> None:
        """Move ``name`` from the working set into the horizon."""

    @abstractmethod
    def add_horizon(self, name: Name) -> None:
        """Introduce a new server identity into the horizon."""

    @abstractmethod
    def remove_horizon(self, name: Name) -> None:
        """Permanently retire a horizon server."""

    def force_add_working(self, name: Name) -> None:
        """Add ``name`` to ``W`` without it having been in the horizon.

        Default implementation routes through the horizon (add + admit),
        which is semantically a zero-warmup addition: connections that
        would have needed tracking were never tracked, so PCC may break.
        """
        self.add_horizon(name)
        self.add_working(name)

    # -- ConsistentHash plain mutators, expressed via the horizon API ----
    def add(self, name: Name) -> None:
        self.force_add_working(name)

    def remove(self, name: Name) -> None:
        self.remove_working(name)
        self.remove_horizon(name)

    def lookup(self, key_hash: int) -> Name:
        destination, _ = self.lookup_with_safety(key_hash)
        return destination

    def lookup_batch(self, keys: np.ndarray) -> np.ndarray:
        destinations, _ = self.lookup_with_safety_batch(keys)
        return destinations

    def lookup_batch_idx(self, keys: np.ndarray) -> np.ndarray:
        indices, _ = self.lookup_with_safety_batch_idx(keys)
        return indices

    def lookup_union(self, key_hash: int) -> Name:
        """Return ``CH(W ∪ H, k)``: the destination after the whole horizon
        joins, in the canonical order.  Reference implementation used by
        property tests; subclasses may override with a faster version."""
        raise NotImplementedError


def has_batch_kernel(ch: ConsistentHash) -> bool:
    """True iff ``ch`` overrides its batch lookup with real vector code.

    The capability probe behind the never-slower batch contract: the
    default batch methods are scalar loops plus array packing, so driving
    them through batch plumbing (mask bookkeeping, array splits) can only
    lose time.  Callers probe once -- per balancer construction or per
    replay -- and route non-vectorized stacks straight through the scalar
    path.  Horizon hashes are judged on ``lookup_with_safety_batch``
    (their ``lookup_batch`` merely discards the safety bit); plain hashes
    on ``lookup_batch``.
    """
    cls = type(ch)
    if isinstance(ch, HorizonConsistentHash):
        return (
            cls.lookup_with_safety_batch
            is not HorizonConsistentHash.lookup_with_safety_batch
        )
    return cls.lookup_batch is not ConsistentHash.lookup_batch


def has_index_kernel(ch: ConsistentHash) -> bool:
    """True iff ``ch`` overrides its *integer* batch lookup with real
    vector code.

    The capability probe behind the columnar dataplane: the default index
    methods route through the name path and a dict remap, so a columnar
    driver (``get_destinations_batch_idx``, the columnar replay loop)
    would pay the object-array cost anyway plus the remap.  As with
    :func:`has_batch_kernel`, horizon hashes are judged on
    ``lookup_with_safety_batch_idx`` and plain hashes on
    ``lookup_batch_idx``.
    """
    cls = type(ch)
    if isinstance(ch, HorizonConsistentHash):
        return (
            cls.lookup_with_safety_batch_idx
            is not HorizonConsistentHash.lookup_with_safety_batch_idx
        )
    return cls.lookup_batch_idx is not ConsistentHash.lookup_batch_idx
