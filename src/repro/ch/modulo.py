"""The non-consistent mod-N strawman from Section 2.4.

``s = hash(k) mod N`` over the sorted working list.  Any backend change
renumbers almost every key (an expected ``1 - 1/N`` unsafe fraction), which
is exactly why JET requires a *consistent* hash.  We keep it as a baseline
for the theory experiments that quantify that fraction.

Note: mod-N violates Property 1 (the result of adding the horizon depends on
how many servers are added, and intermediate prefixes disagree), so its
``lookup_with_safety`` is *conservative*: it reports unsafe whenever any
prefix of horizon additions could move the key, which for mod-N we
approximate by comparing against every union size ``|W|+1 .. |W|+|H|``.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Tuple

import numpy as np

from repro.ch.base import BackendError, HorizonConsistentHash, Name
from repro.hashing.keyed import server_seed


class ModuloHash(HorizonConsistentHash):
    """``hash(k) mod N`` over a canonically ordered server list."""

    def __init__(self, working: Iterable[Name] = (), horizon: Iterable[Name] = ()):
        self._working: List[Name] = sorted(working, key=server_seed)
        self._horizon: List[Name] = sorted(horizon, key=server_seed)
        # Cached backend table (sorted working list); replaced on any
        # working-set mutation so translation caches can key on identity.
        self._names_table = None

    @property
    def working(self) -> FrozenSet[Name]:
        return frozenset(self._working)

    @property
    def horizon(self) -> FrozenSet[Name]:
        return frozenset(self._horizon)

    def lookup(self, key_hash: int) -> Name:
        if not self._working:
            raise BackendError("lookup on empty working set")
        return self._working[key_hash % len(self._working)]

    def lookup_with_safety(self, key_hash: int) -> Tuple[Name, bool]:
        destination = self.lookup(key_hash)
        n = len(self._working)
        # Conservative: unsafe if any number of horizon admissions could
        # change the index (for mod-N that is almost always).
        unsafe = any(
            key_hash % (n + extra) != key_hash % n
            for extra in range(1, len(self._horizon) + 1)
        )
        return destination, unsafe

    def lookup_with_safety_batch(self, keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized name path: index kernel plus one table gather."""
        keys = np.asarray(keys, dtype=np.uint64)
        if len(keys) == 0:
            return np.empty(0, dtype=object), np.zeros(0, dtype=bool)
        indices, unsafe = self.lookup_with_safety_batch_idx(keys)
        return self.backend_table()[indices], unsafe

    def lookup_with_safety_batch_idx(
        self, keys: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized mod-N: one modulo per union size, all-integer."""
        keys = np.asarray(keys, dtype=np.uint64)
        if len(keys) == 0:
            return np.empty(0, dtype=np.int32), np.zeros(0, dtype=bool)
        n = len(self._working)
        if n == 0:
            raise BackendError("lookup on empty working set")
        indices = keys % np.uint64(n)
        unsafe = np.zeros(len(keys), dtype=bool)
        for extra in range(1, len(self._horizon) + 1):
            unsafe |= keys % np.uint64(n + extra) != indices
        return indices.astype(np.int32), unsafe

    def backend_table(self) -> np.ndarray:
        """The canonically sorted working list as an object array."""
        if self._names_table is None:
            table = np.empty(len(self._working), dtype=object)
            table[:] = self._working
            self._names_table = table
        return self._names_table

    def lookup_union(self, key_hash: int) -> Name:
        servers = sorted(self._working + self._horizon, key=server_seed)
        if not servers:
            raise BackendError("lookup on empty server set")
        return servers[key_hash % len(servers)]

    def add_working(self, name: Name) -> None:
        if name not in self._horizon:
            raise BackendError(f"server {name!r} is not in the horizon")
        self._horizon.remove(name)
        self._working.append(name)
        self._working.sort(key=server_seed)
        self._names_table = None

    def remove_working(self, name: Name) -> None:
        if name not in self._working:
            raise BackendError(f"server {name!r} is not working")
        self._working.remove(name)
        self._horizon.append(name)
        self._horizon.sort(key=server_seed)
        self._names_table = None

    def add_horizon(self, name: Name) -> None:
        if name in self._working or name in self._horizon:
            raise BackendError(f"server {name!r} already present")
        self._horizon.append(name)
        self._horizon.sort(key=server_seed)

    def remove_horizon(self, name: Name) -> None:
        if name not in self._horizon:
            raise BackendError(f"server {name!r} is not in the horizon")
        self._horizon.remove(name)
