"""Table-based consistent hashing with HRW row mapping -- Section 3.4 /
Algorithm 4.

A fixed-size table maps row ``r = hash(k) mod rows`` to a server.  Each
row's server is the HRW winner among ``W`` for that row; a parallel Boolean
table ``TR`` records whether some horizon server would win the row instead,
i.e. whether keys landing on that row are unsafe
(``CH(W, k) != CH(W ∪ H, k)``).

Compared to a plain table-based CH, JET costs exactly one Boolean per row
(the paper's "memory overhead of only a single Boolean flag per row").

Two implementations:

- :class:`TableHRWHash` -- numpy-vectorized rows; Algorithm 4's update
  rules implemented as masked array operations, plus two cached arrays
  (current winner weight, current max horizon weight) that make every
  update O(rows) vector work.  This is what the paper's "300 copies per
  server" table sizes need at n=500.
- :class:`ScalarTableHRW` -- a direct, loop-based transcription of
  Algorithm 4, kept as the differential-testing reference.

Both resolve HRW strictly by the 64-bit weight; a tie between two servers
on one row has probability ~2^-64 per pair and is ignored.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

import numpy as np

from repro.ch.base import BackendError, HorizonConsistentHash, Name
from repro.hashing.keyed import KeyedHasher, server_seed
from repro.hashing.mix import fmix64, mix2
from repro.hashing.vector import v_fmix64, v_mix2

DEFAULT_ROWS = 4099  # prime, though any size >= 1 works for this scheme
_ROW_SALT = 0xA076_1D64_78BD_642F
_NO_SERVER = -1


def rows_for(n_servers: int, copies: int = 300) -> int:
    """The paper's sizing rule: ``copies`` table rows per backend server."""
    return max(1, n_servers * copies)


class TableHRWHash(HorizonConsistentHash):
    """Vectorized table-based HRW with per-row unsafe flags (Algorithm 4)."""

    def __init__(
        self,
        working: Iterable[Name] = (),
        horizon: Iterable[Name] = (),
        rows: int = DEFAULT_ROWS,
    ):
        if rows < 1:
            raise ValueError("rows must be >= 1")
        self.rows = rows
        row_ids = np.arange(rows, dtype=np.uint64) ^ np.uint64(_ROW_SALT)
        self._row_hashes = v_fmix64(row_ids)

        self._names: List[Name] = []           # id -> name (never reused)
        self._ids: Dict[Name, int] = {}        # name -> id
        # Cached backend table (object-array twin of _names); replaced --
        # never mutated -- whenever an id is registered or retired, so
        # downstream translation caches can key on its identity.
        self._names_table: Optional[np.ndarray] = None
        self._weights: Dict[int, np.ndarray] = {}  # id -> per-row weights
        self._working_ids: set = set()
        self._horizon_ids: set = set()

        # Row state: winning server id (+weight) and horizon max (+owner).
        self._ch = np.full(rows, _NO_SERVER, dtype=np.int64)
        self._ch_w = np.zeros(rows, dtype=np.uint64)
        self._h_id = np.full(rows, _NO_SERVER, dtype=np.int64)
        self._h_w = np.zeros(rows, dtype=np.uint64)
        self._tr = np.zeros(rows, dtype=bool)

        for name in working:
            self._insert(name, working=True)
        for name in horizon:
            self._insert(name, working=False)

    # ---------------------------------------------------------- plumbing
    def _register(self, name: Name) -> int:
        if name in self._ids:
            raise BackendError(f"server {name!r} already present")
        new_id = len(self._names)
        self._names.append(name)
        self._ids[name] = new_id
        self._names_table = None
        self._weights[new_id] = v_mix2(server_seed(name), self._row_hashes)
        return new_id

    def _insert(self, name: Name, working: bool) -> None:
        new_id = self._register(name)
        w = self._weights[new_id]
        if working:
            wins = (w > self._ch_w) | (self._ch == _NO_SERVER)
            self._ch[wins] = new_id
            self._ch_w[wins] = w[wins]
            self._working_ids.add(new_id)
        else:
            beats = (w > self._h_w) | (self._h_id == _NO_SERVER)
            self._h_id[beats] = new_id
            self._h_w[beats] = w[beats]
            self._horizon_ids.add(new_id)
        self._refresh_tr()

    def _refresh_tr(self, mask: Optional[np.ndarray] = None) -> None:
        """Recompute TR = (max horizon weight beats the winner)."""
        if not self._horizon_ids or not self._working_ids:
            tr = np.zeros(self.rows, dtype=bool)
            if mask is None:
                self._tr = tr
            else:
                self._tr[mask] = False
            return
        if mask is None:
            self._tr = self._h_w > self._ch_w
        else:
            self._tr[mask] = self._h_w[mask] > self._ch_w[mask]

    def _recompute_horizon_max(self, mask: np.ndarray) -> None:
        """Rebuild the per-row horizon maximum on the masked rows."""
        self._h_w[mask] = 0
        self._h_id[mask] = _NO_SERVER
        for hid in self._horizon_ids:
            w = self._weights[hid]
            beats = mask & (w > self._h_w)
            self._h_id[beats] = hid
            self._h_w[beats] = w[beats]

    def _recompute_winner(self, mask: np.ndarray) -> None:
        """Rebuild the per-row working winner on the masked rows."""
        self._ch_w[mask] = 0
        self._ch[mask] = _NO_SERVER
        for wid in self._working_ids:
            w = self._weights[wid]
            beats = mask & ((w > self._ch_w) | (self._ch == _NO_SERVER))
            self._ch[beats] = wid
            self._ch_w[beats] = w[beats]

    # ------------------------------------------------------------- sets
    @property
    def working(self) -> FrozenSet[Name]:
        return frozenset(self._names[i] for i in self._working_ids)

    @property
    def horizon(self) -> FrozenSet[Name]:
        return frozenset(self._names[i] for i in self._horizon_ids)

    # ----------------------------------------------------------- lookup
    def lookup_with_safety(self, key_hash: int) -> Tuple[Name, bool]:
        row = key_hash % self.rows
        winner = self._ch[row]
        if winner == _NO_SERVER:
            raise BackendError("lookup on empty working set")
        return self._names[winner], bool(self._tr[row])

    def lookup_with_safety_batch(self, keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized Algorithm 4 name path: the index kernel plus one
        gather through the cached backend table."""
        indices, unsafe = self.lookup_with_safety_batch_idx(keys)
        return self.backend_table()[indices], unsafe

    def lookup_with_safety_batch_idx(
        self, keys: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized Algorithm 4 lookup: two indexed gathers per batch,
        all-integer (winner ids index :meth:`backend_table`)."""
        keys = np.asarray(keys, dtype=np.uint64)
        if len(keys) == 0:
            return np.empty(0, dtype=np.int32), np.zeros(0, dtype=bool)
        rows = (keys % np.uint64(self.rows)).astype(np.intp)
        winners = self._ch[rows]
        if not self._working_ids:
            raise BackendError("lookup on empty working set")
        return winners.astype(np.int32), self._tr[rows].copy()

    def backend_table(self) -> np.ndarray:
        """Id -> name object array (retired ids hold None, never looked up)."""
        if self._names_table is None:
            table = np.empty(len(self._names), dtype=object)
            table[:] = self._names
            self._names_table = table
        return self._names_table

    def lookup_union(self, key_hash: int) -> Name:
        row = key_hash % self.rows
        if self._ch[row] != _NO_SERVER and not self._tr[row]:
            return self._names[self._ch[row]]
        candidate = self._h_id[row] if self._h_id[row] != _NO_SERVER else self._ch[row]
        if candidate == _NO_SERVER:
            raise BackendError("lookup on empty server set")
        return self._names[candidate]

    def tracked_row_fraction(self) -> float:
        """Fraction of rows flagged unsafe (diagnostic; ~|H|/|W ∪ H|)."""
        return float(self._tr.mean())

    # --------------------------------------------------------- mutation
    def add_working(self, name: Name) -> None:
        """ADDWORKINGSERVER (Algorithm 4 lines 9-15), vectorized."""
        sid = self._ids.get(name)
        if sid is None or sid not in self._horizon_ids:
            raise BackendError(f"server {name!r} is not in the horizon")
        self._horizon_ids.discard(sid)
        self._working_ids.add(sid)
        w = self._weights[sid]
        # Only TR rows can change winner (elsewhere s, from H, loses).
        wins = self._tr & (w > self._ch_w)
        self._ch[wins] = sid
        self._ch_w[wins] = w[wins]
        # s left the horizon: rebuild horizon max where s held it.
        held = self._h_id == sid
        self._recompute_horizon_max(held)
        self._refresh_tr(self._tr.copy())

    def remove_working(self, name: Name) -> None:
        """REMOVEWORKINGSERVER (Algorithm 4 lines 16-21), vectorized."""
        sid = self._ids.get(name)
        if sid is None or sid not in self._working_ids:
            raise BackendError(f"server {name!r} is not working")
        self._working_ids.discard(sid)
        self._horizon_ids.add(sid)
        owned = self._ch == sid
        self._recompute_winner(owned)
        w = self._weights[sid]
        beats = w > self._h_w
        self._h_id[beats] = sid
        self._h_w[beats] = w[beats]
        # Rows s owned are now unsafe w.r.t. its re-addition; others keep
        # their flag (s cannot beat a row it already lost).
        if self._working_ids:
            self._tr[owned] = True
        else:
            self._tr[:] = False  # no working servers left; flags meaningless

    def add_horizon(self, name: Name) -> None:
        """ADDHORIZONSERVER (Algorithm 4 lines 22-25), vectorized."""
        self._insert(name, working=False)

    def remove_horizon(self, name: Name) -> None:
        """REMOVEHORIZONSERVER (Algorithm 4 lines 26-29), vectorized."""
        sid = self._ids.get(name)
        if sid is None or sid not in self._horizon_ids:
            raise BackendError(f"server {name!r} is not in the horizon")
        self._horizon_ids.discard(sid)
        del self._ids[name]
        del self._weights[sid]
        self._names[sid] = None  # id retired, never reused
        self._names_table = None
        held = self._h_id == sid
        self._recompute_horizon_max(held)
        self._refresh_tr(self._tr.copy())


class ScalarTableHRW(HorizonConsistentHash):
    """Loop-based reference transcription of Algorithm 4 (for tests)."""

    def __init__(
        self,
        working: Iterable[Name] = (),
        horizon: Iterable[Name] = (),
        rows: int = 101,
    ):
        if rows < 1:
            raise ValueError("rows must be >= 1")
        self.rows = rows
        self._row_hashes = [fmix64(r ^ _ROW_SALT) for r in range(rows)]
        self._working: Dict[Name, KeyedHasher] = {}
        self._horizon: Dict[Name, KeyedHasher] = {}
        self._ch: List[Optional[Name]] = [None] * rows
        self._tr: List[bool] = [False] * rows
        for name in working:
            self._insert_working(name)
        for name in horizon:
            self.add_horizon(name)

    @property
    def working(self) -> FrozenSet[Name]:
        return frozenset(self._working)

    @property
    def horizon(self) -> FrozenSet[Name]:
        return frozenset(self._horizon)

    def _weight(self, hasher: KeyedHasher, row: int) -> int:
        return mix2(hasher.seed, self._row_hashes[row])

    def _row_argmax(self, row: int) -> Optional[Name]:
        best_name, best_weight = None, -1
        for name, hasher in self._working.items():
            w = self._weight(hasher, row)
            if w > best_weight:
                best_name, best_weight = name, w
        return best_name

    def _horizon_beats(self, row: int, weight: int) -> bool:
        return any(self._weight(h, row) > weight for h in self._horizon.values())

    def lookup_with_safety(self, key_hash: int) -> Tuple[Name, bool]:
        row = key_hash % self.rows
        destination = self._ch[row]
        if destination is None:
            raise BackendError("lookup on empty working set")
        return destination, self._tr[row]

    def lookup_union(self, key_hash: int) -> Name:
        row = key_hash % self.rows
        best_name, best_weight = None, -1
        for side in (self._working, self._horizon):
            for name, hasher in side.items():
                w = self._weight(hasher, row)
                if w > best_weight:
                    best_name, best_weight = name, w
        if best_name is None:
            raise BackendError("lookup on empty server set")
        return best_name

    def _check_new(self, name: Name) -> None:
        if name in self._working or name in self._horizon:
            raise BackendError(f"server {name!r} already present")

    def _insert_working(self, name: Name) -> None:
        self._check_new(name)
        hasher = KeyedHasher(name)
        self._working[name] = hasher
        for row in range(self.rows):
            incumbent = self._ch[row]
            if incumbent is None or self._weight(hasher, row) > self._weight(
                self._working[incumbent], row
            ):
                self._ch[row] = name

    def add_working(self, name: Name) -> None:
        hasher = self._horizon.pop(name, None)
        if hasher is None:
            raise BackendError(f"server {name!r} is not in the horizon")
        self._working[name] = hasher
        for row in range(self.rows):
            if not self._tr[row]:
                continue
            incumbent = self._ch[row]
            w_new = self._weight(hasher, row)
            if incumbent is None or w_new > self._weight(self._working[incumbent], row):
                self._ch[row] = name
                winner_weight = w_new
            else:
                winner_weight = self._weight(self._working[incumbent], row)
            self._tr[row] = self._horizon_beats(row, winner_weight)

    def remove_working(self, name: Name) -> None:
        hasher = self._working.pop(name, None)
        if hasher is None:
            raise BackendError(f"server {name!r} is not working")
        self._horizon[name] = hasher
        for row in range(self.rows):
            if self._ch[row] == name:
                self._ch[row] = self._row_argmax(row)
                self._tr[row] = bool(self._working)

    def add_horizon(self, name: Name) -> None:
        self._check_new(name)
        hasher = KeyedHasher(name)
        self._horizon[name] = hasher
        for row in range(self.rows):
            if self._tr[row]:
                continue
            incumbent = self._ch[row]
            if incumbent is not None and self._weight(hasher, row) > self._weight(
                self._working[incumbent], row
            ):
                self._tr[row] = True

    def remove_horizon(self, name: Name) -> None:
        if self._horizon.pop(name, None) is None:
            raise BackendError(f"server {name!r} is not in the horizon")
        for row in range(self.rows):
            if not self._tr[row]:
                continue
            incumbent = self._ch[row]
            if incumbent is None:
                continue
            self._tr[row] = self._horizon_beats(
                row, self._weight(self._working[incumbent], row)
            )
