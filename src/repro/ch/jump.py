"""Jump consistent hashing (Lamping & Veach 2014).

Included as an extension: the paper's related-work section lists Jump among
the CH candidates.  Jump maps keys onto bucket *indices* ``0..n-1`` with
minimal disruption when ``n`` grows or shrinks **at the tail only** -- it
cannot remove an arbitrary server.  That restriction actually matches JET's
horizon model perfectly when the horizon is managed as a stack: the next
server to be added is always "bucket n", so a key is unsafe iff Jump would
move it into one of the next ``|H|`` indices.
"""

from __future__ import annotations

from typing import FrozenSet, List, Sequence, Tuple

import numpy as np

from repro.ch.base import BackendError, HorizonConsistentHash, Name
from repro.hashing.mix import MASK64

_JUMP_MULT = 2862933555777941757


def jump_bucket(key_hash: int, num_buckets: int) -> int:
    """Reference jump-consistent-hash: key -> bucket in [0, num_buckets)."""
    if num_buckets <= 0:
        raise BackendError("jump_bucket needs at least one bucket")
    key = key_hash & MASK64
    b, j = -1, 0
    while j < num_buckets:
        b = j
        key = (key * _JUMP_MULT + 1) & MASK64
        j = int((b + 1) * ((1 << 31) / ((key >> 33) + 1)))
    return b


def v_jump_bucket(keys: np.ndarray, num_buckets: int) -> np.ndarray:
    """Vectorized :func:`jump_bucket` over a uint64 key array.

    The per-key jump chain has data-dependent length, so the loop runs on
    a shrinking active mask; every arithmetic step (wrapping uint64 LCG,
    float64 division/truncation) mirrors the scalar operations exactly,
    keeping the bucket sequence bit-identical.
    """
    if num_buckets <= 0:
        raise BackendError("jump_bucket needs at least one bucket")
    key = np.asarray(keys, dtype=np.uint64).copy()
    b = np.full(len(key), -1, dtype=np.int64)
    j = np.zeros(len(key), dtype=np.int64)
    mult, one, s33 = np.uint64(_JUMP_MULT), np.uint64(1), np.uint64(33)
    active = j < num_buckets
    while active.any():
        b[active] = j[active]
        advanced = key[active] * mult + one
        key[active] = advanced
        fraction = np.float64(1 << 31) / ((advanced >> s33) + one).astype(np.float64)
        j[active] = ((b[active] + 1).astype(np.float64) * fraction).astype(np.int64)
        active = j < num_buckets
    return b


class JumpHash(HorizonConsistentHash):
    """Jump hashing over an ordered server list with a stack horizon.

    Working servers occupy indices ``0..N-1`` in addition order; horizon
    servers occupy ``N..N+|H|-1`` (the order in which they *will* be
    admitted).  ``add_working`` admits only the *next* horizon server --
    Jump's inherent restriction, which we surface rather than hide.
    """

    def __init__(self, working: Sequence[Name] = (), horizon: Sequence[Name] = ()):
        self._order: List[Name] = list(working) + list(horizon)
        if len(set(self._order)) != len(self._order):
            raise BackendError("duplicate server names")
        self._n_working = len(list(working))
        # Cached backend table (working prefix of _order); replaced on
        # any mutation so translation caches can key on identity.
        self._names_table = None

    # ------------------------------------------------------------- sets
    @property
    def working(self) -> FrozenSet[Name]:
        return frozenset(self._order[: self._n_working])

    @property
    def horizon(self) -> FrozenSet[Name]:
        return frozenset(self._order[self._n_working :])

    @property
    def admission_order(self) -> Tuple[Name, ...]:
        """Horizon servers in the order Jump will admit them."""
        return tuple(self._order[self._n_working :])

    # ----------------------------------------------------------- lookup
    def lookup_with_safety(self, key_hash: int) -> Tuple[Name, bool]:
        if self._n_working == 0:
            raise BackendError("lookup on empty working set")
        bucket = jump_bucket(key_hash, self._n_working)
        union_bucket = jump_bucket(key_hash, len(self._order))
        return self._order[bucket], union_bucket != bucket

    def lookup_with_safety_batch(self, keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized name path: index kernel plus one table gather."""
        keys = np.asarray(keys, dtype=np.uint64)
        if len(keys) == 0:
            return np.empty(0, dtype=object), np.zeros(0, dtype=bool)
        indices, unsafe = self.lookup_with_safety_batch_idx(keys)
        return self.backend_table()[indices], unsafe

    def lookup_with_safety_batch_idx(
        self, keys: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized stack-horizon safety: one jump per set size; the
        bucket *is* the index into :meth:`backend_table` (addition order)."""
        keys = np.asarray(keys, dtype=np.uint64)
        if len(keys) == 0:
            return np.empty(0, dtype=np.int32), np.zeros(0, dtype=bool)
        if self._n_working == 0:
            raise BackendError("lookup on empty working set")
        buckets = v_jump_bucket(keys, self._n_working)
        if self._n_working == len(self._order):
            union_buckets = buckets
        else:
            union_buckets = v_jump_bucket(keys, len(self._order))
        return buckets.astype(np.int32), union_buckets != buckets

    def backend_table(self) -> np.ndarray:
        """Working servers in addition order (Jump's bucket order)."""
        if self._names_table is None:
            table = np.empty(self._n_working, dtype=object)
            table[:] = self._order[: self._n_working]
            self._names_table = table
        return self._names_table

    def lookup_union(self, key_hash: int) -> Name:
        if not self._order:
            raise BackendError("lookup on empty server set")
        return self._order[jump_bucket(key_hash, len(self._order))]

    # --------------------------------------------------------- mutation
    def add_working(self, name: Name) -> None:
        if self._n_working == len(self._order) or self._order[self._n_working] != name:
            raise BackendError(
                f"Jump admits horizon servers in order; next is "
                f"{self._order[self._n_working] if self._n_working < len(self._order) else None!r}, "
                f"not {name!r}"
            )
        self._n_working += 1
        self._names_table = None

    def remove_working(self, name: Name) -> None:
        if self._n_working == 0 or self._order[self._n_working - 1] != name:
            raise BackendError(
                f"Jump removes working servers in LIFO order; last is "
                f"{self._order[self._n_working - 1] if self._n_working else None!r}, not {name!r}"
            )
        self._n_working -= 1
        self._names_table = None

    def add_horizon(self, name: Name) -> None:
        if name in self._order:
            raise BackendError(f"server {name!r} already present")
        self._order.append(name)

    def remove_horizon(self, name: Name) -> None:
        if self._n_working >= len(self._order) or self._order[-1] != name:
            raise BackendError("Jump retires horizon servers from the tail only")
        self._order.pop()

    def force_add_working(self, name: Name) -> None:
        if self._n_working != len(self._order):
            raise BackendError("Jump cannot force-add while a horizon exists")
        self._order.append(name)
        self._n_working += 1
        self._names_table = None
