"""Consistent hashing algorithms, all implemented from scratch.

JET-pluggable (implement :class:`~repro.ch.base.HorizonConsistentHash`):

- :class:`HRWHash` -- rendezvous hashing (Section 3.2);
- :class:`RingHash` -- ring with virtual nodes (Section 3.3);
- :class:`TableHRWHash` -- table-based HRW (Section 3.4);
- :class:`AnchorHash` -- AnchorHash (Section 3.5);
- :class:`JumpHash` -- jump hashing (extension; horizon is a stack);
- :class:`ModuloHash` -- the Section 2.4 strawman (not consistent);
- :class:`ConcuryHash` -- Concury-style Othello perfect mapping over
  flowsets (extension; O(1) dataplane, control-plane mutation).

Full-CT only (implements plain :class:`~repro.ch.base.ConsistentHash`):

- :class:`MaglevHash` -- cannot be JET-integrated because of row flips
  (Section 3.6).
"""

from repro.ch.base import (
    BackendError,
    ConsistentHash,
    HorizonConsistentHash,
    Name,
    has_batch_kernel,
    has_index_kernel,
)
from repro.ch.hrw import HRWHash
from repro.ch.ring import RingHash
from repro.ch.ring_incremental import IncrementalRingHash
from repro.ch.table_hrw import ScalarTableHRW, TableHRWHash, rows_for
from repro.ch.anchor import AnchorBuckets, AnchorHash
from repro.ch.maglev import MaglevHash
from repro.ch.jump import JumpHash, jump_bucket, v_jump_bucket
from repro.ch.modulo import ModuloHash
from repro.ch.concury import ConcuryHash
from repro.ch.weighted import WeightedHRWHash, WeightedRingHash

#: JET-compatible CH families evaluated in the paper, by name (plus the
#: incremental ring variant from Algorithm 3's implementation notes).
JET_FAMILIES = {
    "hrw": HRWHash,
    "ring": RingHash,
    "ring-incremental": IncrementalRingHash,
    "table": TableHRWHash,
    "anchor": AnchorHash,
}

#: Horizon-aware extension families beyond the paper's four (Jump with a
#: stack horizon; the §2.4 mod-N strawman).  They satisfy the same
#: interface -- including the batch lookup contract -- and are covered by
#: the batch-vs-scalar differential tests.
EXTENSION_FAMILIES = {
    "jump": JumpHash,
    "modulo": ModuloHash,
    "concury": ConcuryHash,
}


def family_choices(jet_only: bool = False, maglev: bool = False):
    """Sorted CH family names for CLI ``choices=`` lists.

    The single source of truth is the registries above: a new family
    registered there appears in every ``--family`` flag automatically.
    ``jet_only`` restricts to the paper's horizon-pluggable four (plus
    variants); ``maglev`` appends the full-CT-only MaglevHash.
    """
    names = sorted(JET_FAMILIES)
    if not jet_only:
        names += sorted(EXTENSION_FAMILIES)
    if maglev:
        names.append("maglev")
    return names

__all__ = [
    "BackendError",
    "ConsistentHash",
    "HorizonConsistentHash",
    "Name",
    "has_batch_kernel",
    "has_index_kernel",
    "HRWHash",
    "RingHash",
    "IncrementalRingHash",
    "TableHRWHash",
    "ScalarTableHRW",
    "rows_for",
    "AnchorHash",
    "AnchorBuckets",
    "MaglevHash",
    "JumpHash",
    "jump_bucket",
    "v_jump_bucket",
    "ModuloHash",
    "ConcuryHash",
    "WeightedHRWHash",
    "WeightedRingHash",
    "JET_FAMILIES",
    "EXTENSION_FAMILIES",
    "family_choices",
]
