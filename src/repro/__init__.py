"""JET: Just Enough Tracking for Connection Consistency.

A from-scratch Python reproduction of *"Load Balancing with JET: Just
Enough Tracking for Connection Consistency"* (Mendelson, Vargaftik,
Lorenz, Barabash, Keslassy, Orda -- CoNEXT 2021).

Quickstart::

    from repro import make_jet

    lb = make_jet("anchor", working=[f"10.0.0.{i}" for i in range(1, 11)],
                  horizon=["10.0.1.1"])
    server = lb.get_destination(hash_key(("1.2.3.4", 443, "src", 12345)))

Package map:

- :mod:`repro.core`      -- the JET framework (Algorithm 1) + baselines
- :mod:`repro.ch`        -- consistent hashes (HRW, Ring, Table, Anchor,
  Maglev, Jump, mod-N)
- :mod:`repro.ct`        -- connection-tracking tables (LRU/FIFO/random)
- :mod:`repro.sim`       -- the Section 5.1 event-driven simulator
- :mod:`repro.traces`    -- synthetic traces + replay (Sections 5.2-5.3)
- :mod:`repro.analysis`  -- balance/statistics helpers
- :mod:`repro.experiments` -- every table and figure, runnable
- :mod:`repro.faults`    -- deterministic fault injection: chaos
  schedules, health probation, fallible CT sync channels
"""

from repro.core import (
    FullCTLoadBalancer,
    JETLoadBalancer,
    LoadBalancer,
    PowerOfTwoJET,
    StatelessLoadBalancer,
    make_ch,
    make_full_ct,
    make_jet,
)
from repro.core.lb_pool import LBPool
from repro.core.bounded_load import BoundedLoadJET
from repro.ch import (
    AnchorHash,
    IncrementalRingHash,
    BackendError,
    ConsistentHash,
    HorizonConsistentHash,
    HRWHash,
    JumpHash,
    MaglevHash,
    ModuloHash,
    RingHash,
    TableHRWHash,
    WeightedHRWHash,
    WeightedRingHash,
)
from repro.ct import FIFOCT, LRUCT, RandomEvictCT, TTLCT, UnboundedCT, make_ct
from repro.faults import (
    ChaosInjector,
    FaultEvent,
    FaultSchedule,
    HealthMonitor,
    SyncChannel,
    chaos_mix,
)
from repro.hashing.keyed import hash_key
from repro.net import FiveTuple, FiveTuple6, Packet
from repro.sim import SimulationConfig, run_simulation
from repro.traces import Trace, ny18_like, replay, uni1_like, zipf_trace

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "LoadBalancer",
    "JETLoadBalancer",
    "FullCTLoadBalancer",
    "StatelessLoadBalancer",
    "PowerOfTwoJET",
    "LBPool",
    "BoundedLoadJET",
    "make_jet",
    "make_full_ct",
    "make_ch",
    # consistent hashing
    "ConsistentHash",
    "HorizonConsistentHash",
    "BackendError",
    "HRWHash",
    "RingHash",
    "IncrementalRingHash",
    "TableHRWHash",
    "AnchorHash",
    "MaglevHash",
    "JumpHash",
    "ModuloHash",
    "WeightedHRWHash",
    "WeightedRingHash",
    # connection tracking
    "UnboundedCT",
    "LRUCT",
    "FIFOCT",
    "RandomEvictCT",
    "TTLCT",
    "make_ct",
    # networking + hashing
    "FiveTuple",
    "FiveTuple6",
    "Packet",
    "hash_key",
    # simulation + traces
    "SimulationConfig",
    "run_simulation",
    "Trace",
    "zipf_trace",
    "uni1_like",
    "ny18_like",
    "replay",
]
