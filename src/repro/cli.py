"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiment``  run one of the paper's tables/figures (fig3..fig7,
                table1, table2, theory, extensions, lbpool, all)
``simulate``    one event-driven run with explicit knobs (Section 5.1)
``scenario``    the declarative scenario library (list / show / run)
``trace``       generate / inspect / replay packet traces
``obs``         observability utilities (summarize a metrics artifact)
``version``     print package version

Examples::

    python -m repro experiment fig3 --scale smoke
    python -m repro simulate --mode jet --servers 120 --horizon 12 \
        --rate 1000 --duration 60 --update-rate 10 --ct-size 500
    python -m repro scenario run flash-crowd
    python -m repro simulate --scenario zone-failure --config-out run.json
    python -m repro simulate --config run.json
    python -m repro trace generate zipf --skew 1.1 --packets 500000 \
        --out /tmp/z11.npz
    python -m repro trace replay /tmp/z11.npz --family anchor --mode jet
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.sim.distributions import LogNormal


def _open_metrics(args: argparse.Namespace):
    """(registry, exporter) for ``--metrics-out``, or (None, None)."""
    if not getattr(args, "metrics_out", None):
        return None, None
    from repro.obs import JsonlExporter, Registry

    registry = Registry()
    exporter = JsonlExporter(args.metrics_out)
    registry.attach_exporter(exporter)
    return registry, exporter


def _close_metrics(args: argparse.Namespace, registry, exporter, t: float = 0.0) -> None:
    """Final snapshot + invariants + Prometheus sibling, then report."""
    from repro.obs import (
        MonitorSuite,
        evaluate_and_export,
        prometheus_sibling,
        write_prometheus,
    )

    results = evaluate_and_export(registry, t=t, tolerance=args.metrics_tolerance)
    exporter.close()
    prom_path = write_prometheus(registry, prometheus_sibling(args.metrics_out))
    print(f"metrics: {args.metrics_out} (prometheus: {prom_path})")
    print("invariant monitors:")
    print(MonitorSuite.render(results))
    violated = MonitorSuite.violations(results)
    if violated:
        print(f"{len(violated)} invariant violation(s)")


def _experiment(args: argparse.Namespace) -> int:
    from repro.experiments import (
        control_loop, extensions, fig3, fig4, fig5, fig6, fig7, lb_pool,
        resilience, table12, theory,
    )

    runners = {
        "fig3": lambda: fig3.main(args.scale),
        "fig4": lambda: fig4.main(args.scale),
        "fig5": lambda: fig5.main(args.scale),
        "fig6": lambda: fig6.main(args.scale),
        "fig7": lambda: fig7.main(args.scale),
        "table1": lambda: table12.main_table1(args.scale),
        "table2": lambda: table12.main_table2(args.scale),
        "theory": theory.main,
        "extensions": extensions.main,
        "lbpool": lb_pool.main,
        "resilience": lambda: resilience.main(args.scale, seed=args.seed),
        "control-loop": lambda: control_loop.main(args.scale, seed=args.seed),
    }
    names = list(runners) if args.name == "all" else [args.name]
    for name in names:
        runners[name]()
    return 0


def _resolve_scenario_spec(args: argparse.Namespace):
    """The spec named by ``--scenario NAME`` or a ``--file PATH``."""
    from repro.scenarios import load_file, load_scenario

    if getattr(args, "file", None):
        return load_file(args.file)
    if not getattr(args, "name", None):
        raise SystemExit("give a scenario name or --file PATH")
    return load_scenario(args.name)


def _simulate_from_source(args: argparse.Namespace) -> int:
    """``simulate --scenario NAME`` / ``simulate --config PATH``: run a
    pre-assembled config through the plain simulation path (no envelope
    judging -- that is ``repro scenario run``)."""
    from repro.sim.persist import save_config
    from repro.sim.scenario import run_simulation

    shards = args.shards
    if args.scenario:
        from repro.scenarios import compile_scenario, load_scenario

        compiled = compile_scenario(load_scenario(args.scenario))
        config = compiled.config
        if shards is None:
            shards = compiled.shards  # the spec pins the partition
    else:
        from repro.sim.persist import load_config

        config = load_config(args.config)
    if args.config_out:
        save_config(config, args.config_out)
        print(f"config: {args.config_out}")
    registry, exporter = _open_metrics(args)
    config = config.with_(registry=registry)
    if args.workers == 1 and shards is None:
        result = run_simulation(config)
    else:
        from repro.shard import simulate_sharded

        result = simulate_sharded(config, n_workers=args.workers, n_shards=shards)
    print(result.summary())
    if registry is not None:
        _close_metrics(args, registry, exporter, t=config.duration_s)
    return 0


def _simulate(args: argparse.Namespace) -> int:
    from repro.sim.scenario import SimulationConfig, run_simulation

    if args.scenario and args.config:
        raise SystemExit("--scenario and --config are mutually exclusive")
    if args.scenario or args.config:
        return _simulate_from_source(args)
    fault_schedule = None
    if any(
        rate > 0
        for rate in (
            args.crash_rate, args.flap_rate, args.group_rate, args.unannounced_rate,
            args.probe_loss_rate, args.gossip_partition_rate, args.stale_autoscaler_rate,
        )
    ):
        from repro.faults import FaultSchedule

        fault_schedule = FaultSchedule.generate(
            args.duration,
            seed=args.seed,
            crash_rate_per_min=args.crash_rate,
            flap_rate_per_min=args.flap_rate,
            group_rate_per_min=args.group_rate,
            unannounced_rate_per_min=args.unannounced_rate,
            probe_loss_rate_per_min=args.probe_loss_rate,
            gossip_partition_rate_per_min=args.gossip_partition_rate,
            stale_autoscaler_rate_per_min=args.stale_autoscaler_rate,
            group_size=args.group_size,
        )
    rate_profile = None
    if args.flash_crowd is not None:
        from repro.sim.workload import RateProfile

        start, ramp, magnitude = args.flash_crowd
        rate_profile = RateProfile.flash_crowd(
            start=start, ramp_s=ramp, magnitude=magnitude, hold_s=args.flash_hold
        )
    elif args.diurnal is not None:
        from repro.sim.workload import RateProfile

        rate_profile = RateProfile.diurnal(
            period_s=args.diurnal, amplitude=args.diurnal_amplitude
        )
    duration_dist = None
    if args.flow_duration is not None:
        from repro.sim.distributions import Exponential

        duration_dist = Exponential(args.flow_duration)
    registry, exporter = _open_metrics(args)
    config = SimulationConfig(
        duration_s=args.duration,
        connection_rate=args.rate,
        n_servers=args.servers,
        horizon_size=args.horizon,
        update_rate_per_min=args.update_rate,
        ct_capacity=args.ct_size,
        ct_policy=args.ct_policy,
        ct_ttl=args.ct_ttl,
        mode=args.mode,
        ch_family=args.family,
        seed=args.seed,
        duration_dist=duration_dist,
        downtime_dist=LogNormal(median=args.downtime, sigma=0.8),
        fault_schedule=fault_schedule,
        probation_base_s=args.probation_base,
        registry=registry,
        control=args.control,
        control_interval_s=args.control_interval,
        scale_lead_time_s=args.lead_time,
        forecast_precision=args.forecast_precision,
        forecast_recall=args.forecast_recall,
        autoscale_max=args.autoscale_max,
        probe_fail_threshold=args.probe_fail_threshold,
        probe_recover_threshold=args.probe_recover_threshold,
        probe_loss_probability=args.probe_loss,
        rate_profile=rate_profile,
    )
    if args.config_out:
        from repro.sim.persist import save_config

        save_config(config, args.config_out)
        print(f"config: {args.config_out}")
    if args.workers == 1 and args.shards is None:
        result = run_simulation(config)
    else:
        from repro.shard import simulate_sharded

        result = simulate_sharded(
            config, n_workers=args.workers, n_shards=args.shards
        )
    print(result.summary())
    if registry is not None:
        _close_metrics(args, registry, exporter, t=args.duration)
    return 0


def _scenario(args: argparse.Namespace) -> int:
    from repro.scenarios import compile_scenario, load_all, run_compiled

    if args.scenario_command == "list":
        for name, spec in load_all().items():
            marker = f" [{spec.mode}]" if spec.mode != "jet" else ""
            print(f"{name}{marker}: {spec.description}")
        return 0

    if args.scenario_command == "show":
        import json as _json

        spec = _resolve_scenario_spec(args)
        compiled = compile_scenario(spec)
        print(_json.dumps(spec.to_dict(), indent=2, sort_keys=True))
        schedule = compiled.config.fault_schedule
        print(
            f"# compiles to: {compiled.config.n_servers} servers, "
            f"horizon {compiled.config.horizon_size}, "
            f"{len(schedule) if schedule is not None else 0} fault events, "
            f"{compiled.shards} shards"
            + (", closed-loop control" if compiled.config.control else "")
        )
        return 0

    # run
    from repro.scenarios import ScenarioSpec

    spec = _resolve_scenario_spec(args)
    overrides = {}
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.mode is not None:
        overrides["mode"] = args.mode
    if args.duration is not None:
        overrides["duration_s"] = args.duration
    if overrides:
        spec = ScenarioSpec.parse({**spec.to_dict(), **overrides})
    compiled = compile_scenario(spec)
    if args.config_out:
        from repro.sim.persist import save_config

        save_config(compiled.config, args.config_out)
        print(f"config: {args.config_out}")
    registry, exporter = _open_metrics(args)
    report = run_compiled(compiled, workers=args.workers, registry=registry)
    if exporter is not None:
        exporter.close()
        print(f"metrics: {args.metrics_out}")
    print(report.render())
    if args.json_out:
        import json as _json

        with open(args.json_out, "w") as handle:
            _json.dump(report.to_json(), handle, indent=2, sort_keys=True)
        print(f"report: {args.json_out}")
    return 0 if report.ok else 1


def _trace(args: argparse.Namespace) -> int:
    from repro.traces import load_trace, ny18_like, replay, save_trace, uni1_like, zipf_trace

    if args.trace_command == "generate":
        if args.kind == "zipf":
            trace = zipf_trace(
                args.skew, n_packets=args.packets,
                population=args.population or args.packets // 4, seed=args.seed,
            )
        elif args.kind == "uni1":
            trace = uni1_like(scale=args.trace_scale, seed=args.seed)
        else:
            trace = ny18_like(scale=args.trace_scale, seed=args.seed)
        print(trace.describe())
        if args.out:
            save_trace(trace, args.out, compressed=not args.uncompressed)
            print(f"saved to {args.out}")
        return 0

    if args.trace_command == "info":
        trace = load_trace(args.path)
        print(trace.describe())
        histogram = sorted(trace.size_histogram().items())
        print(f"size histogram (first 10 of {len(histogram)}): {histogram[:10]}")
        return 0

    # replay
    from repro.shard import BalancerSpec, replay_sharded

    spec = BalancerSpec.fleet(
        mode=args.mode,
        family=args.family,
        n_servers=args.servers,
        horizon_size=args.horizon,
        seed=args.seed,
    )
    registry, exporter = _open_metrics(args)
    with load_trace(args.path, mmap=args.mmap) as trace:
        if args.workers == 1 and args.shards is None:
            outcome = replay(trace, spec.build(0), metrics=registry)
            print(outcome.row())
            elapsed = outcome.wall_seconds
        else:
            sharded = replay_sharded(
                trace,
                spec,
                n_workers=args.workers,
                n_shards=args.shards,
                metrics=registry,
            )
            print(sharded.row())
            elapsed = sharded.end_to_end_seconds
    if registry is not None:
        _close_metrics(args, registry, exporter, t=elapsed)
    return 0


def _obs(args: argparse.Namespace) -> int:
    from repro.obs.summarize import main as summarize_main

    argv = [args.path]
    if args.strict:
        argv.append("--strict")
    return summarize_main(argv)


def _add_metrics_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write a JSONL metrics time series here "
                             "(plus a Prometheus .prom sibling)")
    parser.add_argument("--metrics-tolerance", type=float, default=0.10,
                        help="relative tolerance for the tracked-fraction "
                             "invariant monitor")


def build_parser() -> argparse.ArgumentParser:
    # Choices come from the registries, not hand-kept lists: registering
    # a CH family or LB mode is all it takes to appear in --family/--mode.
    from repro.ch import family_choices
    from repro.core.factories import lb_mode_choices

    parser = argparse.ArgumentParser(
        prog="repro",
        description="JET (CoNEXT 2021) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("experiment", help="run a paper table/figure")
    exp.add_argument(
        "name",
        choices=[
            "fig3", "fig4", "fig5", "fig6", "fig7",
            "table1", "table2", "theory", "extensions", "lbpool",
            "resilience", "control-loop", "all",
        ],
    )
    exp.add_argument("--scale", choices=["smoke", "default", "paper"], default=None)
    exp.add_argument("--seed", type=int, default=0,
                     help="chaos seed (resilience experiment)")
    exp.set_defaults(func=_experiment)

    sim = sub.add_parser("simulate", help="run one event-driven simulation")
    sim.add_argument("--scenario", default=None, metavar="NAME",
                     help="run a library scenario's compiled config "
                          "(ignores the explicit knobs below; see "
                          "'repro scenario list')")
    sim.add_argument("--config", default=None, metavar="PATH",
                     help="re-run a config saved with --config-out "
                          "(byte-identical reproduction)")
    sim.add_argument("--config-out", default=None, metavar="PATH",
                     help="persist the effective config (seed, family, "
                          "mode, chaos schedule) as JSON for re-runs")
    sim.add_argument("--mode", choices=lb_mode_choices() + ["p2c"], default="jet",
                     help="LB wrapper; with --mode concury, --family names "
                          "the inner control-plane CH")
    sim.add_argument("--family", default="anchor", choices=family_choices())
    sim.add_argument("--servers", type=int, default=100)
    sim.add_argument("--horizon", type=int, default=10)
    sim.add_argument("--rate", type=float, default=1000.0,
                     help="nominal concurrent connections")
    sim.add_argument("--duration", type=float, default=60.0)
    sim.add_argument("--update-rate", type=float, default=10.0,
                     help="server removals per minute")
    sim.add_argument("--downtime", type=float, default=10.0,
                     help="median server downtime (seconds)")
    sim.add_argument("--ct-size", type=int, default=None)
    sim.add_argument("--ct-policy", choices=["lru", "fifo", "random", "ttl"], default="lru")
    sim.add_argument("--ct-ttl", type=float, default=None)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--workers", type=int, default=1,
                     help="worker processes; flows are sharded, the "
                          "membership schedule replicates to every shard")
    sim.add_argument("--shards", type=int, default=None,
                     help="flow shards (default: --workers)")
    # Chaos knobs (repro.faults) -- all default off.
    sim.add_argument("--crash-rate", type=float, default=0.0,
                     help="chaos crashes per minute")
    sim.add_argument("--flap-rate", type=float, default=0.0,
                     help="flap storms per minute")
    sim.add_argument("--group-rate", type=float, default=0.0,
                     help="correlated-group failures per minute")
    sim.add_argument("--group-size", type=int, default=3,
                     help="servers lost per correlated failure")
    sim.add_argument("--unannounced-rate", type=float, default=0.0,
                     help="unannounced (horizon-bypassing) additions per minute")
    sim.add_argument("--probation-base", type=float, default=1.0,
                     help="base probation backoff for repeat failures (s)")
    # Closed-loop control plane (repro.control) -- default off.
    sim.add_argument("--control", action="store_true",
                     help="run the closed loop: health-probed membership "
                          "plus an autoscaler whose pending launches ARE "
                          "the JET horizon")
    sim.add_argument("--control-interval", type=float, default=0.5,
                     help="control tick / probe interval (s)")
    sim.add_argument("--lead-time", type=float, default=5.0,
                     help="autoscaler launch lead time (s); also the "
                          "window a horizon announcement anticipates")
    sim.add_argument("--forecast-precision", type=float, default=1.0,
                     help="P(an announcement is real); below 1.0 the "
                          "autoscaler also emits phantom announcements")
    sim.add_argument("--forecast-recall", type=float, default=1.0,
                     help="P(a real launch was announced); below 1.0 some "
                          "joins arrive unannounced (surprise additions)")
    sim.add_argument("--autoscale-max", type=int, default=8,
                     help="cap on autoscaled servers beyond the baseline")
    sim.add_argument("--probe-fail-threshold", type=int, default=3,
                     help="consecutive failed probes before eviction")
    sim.add_argument("--probe-recover-threshold", type=int, default=2,
                     help="consecutive good probes before readmission")
    sim.add_argument("--probe-loss", type=float, default=0.0,
                     help="baseline probe loss probability")
    # Control-plane chaos (needs --control to have any effect).
    sim.add_argument("--probe-loss-rate", type=float, default=0.0,
                     help="probe-loss fault windows per minute")
    sim.add_argument("--gossip-partition-rate", type=float, default=0.0,
                     help="gossip partitions per minute (pool runs)")
    sim.add_argument("--stale-autoscaler-rate", type=float, default=0.0,
                     help="stale-autoscaler-signal windows per minute")
    # Time-varying workload.
    sim.add_argument("--flash-crowd", type=float, nargs=3, default=None,
                     metavar=("START", "RAMP", "MAGNITUDE"),
                     help="flash-crowd rate profile: ramp to MAGNITUDE x "
                          "baseline over RAMP seconds starting at START")
    sim.add_argument("--flash-hold", type=float, default=10.0,
                     help="seconds the flash crowd holds its peak")
    sim.add_argument("--diurnal", type=float, default=None, metavar="PERIOD",
                     help="diurnal sine rate profile with this period (s)")
    sim.add_argument("--diurnal-amplitude", type=float, default=0.5)
    sim.add_argument("--flow-duration", type=float, default=None,
                     help="mean of an exponential flow-duration dist "
                          "(default: the paper's Hadoop distribution)")
    _add_metrics_args(sim)
    sim.set_defaults(func=_simulate)

    scen = sub.add_parser("scenario", help="declarative scenario library")
    scen_sub = scen.add_subparsers(dest="scenario_command", required=True)

    scen_sub.add_parser("list", help="list library scenarios")

    def _add_scenario_source(p):
        p.add_argument("name", nargs="?", default=None,
                       help="library scenario name (see 'scenario list')")
        p.add_argument("--file", default=None, metavar="PATH",
                       help="load the spec from a .json/.toml file instead")

    show = scen_sub.add_parser("show", help="print a spec and its compilation")
    _add_scenario_source(show)

    run = scen_sub.add_parser(
        "run", help="compile, run, and judge a scenario against its envelope"
    )
    _add_scenario_source(run)
    run.add_argument("--workers", type=int, default=1,
                     help="worker processes; the spec pins the shard "
                          "partition, so results are worker-invariant")
    run.add_argument("--seed", type=int, default=None,
                     help="override the spec's seed")
    run.add_argument("--mode", default=None,
                     help="override the spec's LB mode (e.g. full, concury)")
    run.add_argument("--duration", type=float, default=None,
                     help="override the spec's duration (seconds)")
    run.add_argument("--config-out", default=None, metavar="PATH",
                     help="persist the compiled effective config as JSON")
    run.add_argument("--json-out", default=None, metavar="PATH",
                     help="write the full scenario report as JSON")
    _add_metrics_args(run)
    scen.set_defaults(func=_scenario)

    trace = sub.add_parser("trace", help="generate / inspect / replay traces")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    gen = trace_sub.add_parser("generate")
    gen.add_argument("kind", choices=["zipf", "uni1", "ny18"])
    gen.add_argument("--skew", type=float, default=1.0)
    gen.add_argument("--packets", type=int, default=1_000_000)
    gen.add_argument("--population", type=int, default=None)
    gen.add_argument("--trace-scale", type=float, default=0.05)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", default=None)
    gen.add_argument("--uncompressed", action="store_true",
                     help="write an uncompressed archive (memmap-loadable "
                          "with replay --mmap)")

    info = trace_sub.add_parser("info")
    info.add_argument("path")

    rep = trace_sub.add_parser("replay")
    rep.add_argument("path")
    rep.add_argument("--family", default="anchor", choices=family_choices(maglev=True))
    rep.add_argument("--mode", choices=lb_mode_choices(), default="jet",
                     help="LB wrapper; with --mode concury, --family names "
                          "the inner control-plane CH")
    rep.add_argument("--servers", type=int, default=50)
    rep.add_argument("--horizon", type=int, default=5)
    rep.add_argument("--seed", type=int, default=0,
                     help="master seed; per-shard seeds derive from it")
    rep.add_argument("--workers", type=int, default=1,
                     help="worker processes for the sharded dataplane")
    rep.add_argument("--shards", type=int, default=None,
                     help="keyspace shards (default: --workers); fixing it "
                          "decouples the partition from the process count")
    rep.add_argument("--mmap", action="store_true",
                     help="memory-map the trace instead of loading it "
                          "(uncompressed archives only)")
    _add_metrics_args(rep)
    trace.set_defaults(func=_trace)

    obs = sub.add_parser("obs", help="observability utilities")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    osum = obs_sub.add_parser("summarize", help="summarize a JSONL metrics artifact")
    osum.add_argument("path", help="metrics JSONL file written by --metrics-out")
    osum.add_argument("--strict", action="store_true",
                      help="exit 1 on any recorded invariant violation")
    obs.set_defaults(func=_obs)

    ver = sub.add_parser("version", help="print the package version")
    ver.set_defaults(func=lambda _args: (print(__import__("repro").__version__), 0)[1])

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
