"""Predictive autoscaler whose pending additions *are* JET's horizon.

JET's §2.3 contract says the dataplane knows the horizon set H -- the
servers about to join W -- ahead of time.  In a real deployment nothing
hands H down from above: it is the autoscaler's launch queue.  A scale-out
decision starts a server booting (``lead_time_s`` of warm-up), and during
exactly that window the server's identity can sit in H, so JET tracks the
connections its arrival could move.  The autoscaler therefore *is* the
horizon oracle, and its forecast quality bounds JET's consistency:

- a **missed** addition (the scaler failed to predict, or the announcement
  was lost) joins W as a *surprise* (``force_add_working_server``) and its
  PCC exposure is unprotected;
- a **phantom** announcement (predicted growth that never materialised)
  wastes tracking: flows are tracked against an addition that never
  happens.

:class:`HorizonScorecard` reports exactly this as precision / recall over
announcements vs realized additions.  :class:`Autoscaler` produces the
decisions: it watches a load gauge (mean active flows per working server),
extrapolates it ``lead_time_s`` ahead over a sliding window, and plans
against high/low watermarks with hysteresis (cooldown + distinct up/down
thresholds) so noise doesn't thrash the backend set.

Forecast degradation is explicit and seeded: ``forecast_recall`` is the
probability a genuine scale-out is announced into H (below 1.0, some
joins become surprises); ``forecast_precision`` injects phantom
announcements at rate ``(1 - precision)`` per genuine one.  Sweeping both
is how ``experiments/control_loop.py`` maps forecast quality onto tracked
fraction and PCC breakage.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.hashing.mix import splitmix64


@dataclass
class HorizonScorecard:
    """Precision/recall of horizon announcements vs realized additions.

    An announcement is **matched** when the announced server later joins
    W; **phantom** when it expires unrealized; an addition is **missed**
    when the server joined W without ever being announced.  Announcements
    still pending at evaluation time are excluded (they are not yet
    right or wrong).
    """

    matched: int = 0
    phantom: int = 0
    missed: int = 0

    @property
    def precision(self) -> Optional[float]:
        judged = self.matched + self.phantom
        return self.matched / judged if judged else None

    @property
    def recall(self) -> Optional[float]:
        realized = self.matched + self.missed
        return self.matched / realized if realized else None

    def as_dict(self) -> dict:
        return {
            "matched": self.matched,
            "phantom": self.phantom,
            "missed": self.missed,
            "precision": self.precision,
            "recall": self.recall,
        }


@dataclass(frozen=True)
class ScaleDecision:
    """One autoscaler action, emitted by :meth:`Autoscaler.plan`."""

    kind: str           # "launch" | "retire"
    count: int
    #: How many of ``count`` launches carry an announcement (the rest are
    #: recall misses whose joins land as surprises).  Per-launch draws,
    #: so sweeping ``forecast_recall`` moves this smoothly.
    announced: int
    phantoms: int = 0   # extra announcements that will never realize


class Autoscaler:
    """Watermark autoscaler with linear load forecasting and hysteresis."""

    def __init__(
        self,
        target_load: float = 8.0,
        high_watermark: float = 1.25,
        low_watermark: float = 0.5,
        lead_time_s: float = 5.0,
        cooldown_s: float = 10.0,
        window: int = 8,
        max_step: int = 2,
        forecast_precision: float = 1.0,
        forecast_recall: float = 1.0,
        seed: int = 0,
    ):
        if target_load <= 0:
            raise ValueError("target_load must be positive")
        if not 0.0 <= low_watermark < high_watermark:
            raise ValueError("need 0 <= low_watermark < high_watermark")
        if not 0.0 <= forecast_precision <= 1.0:
            raise ValueError("forecast_precision must be in [0, 1]")
        if not 0.0 <= forecast_recall <= 1.0:
            raise ValueError("forecast_recall must be in [0, 1]")
        if window < 2:
            raise ValueError("window must be >= 2")
        self.target_load = target_load
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.lead_time_s = lead_time_s
        self.cooldown_s = cooldown_s
        self.window = window
        self.max_step = max_step
        self.forecast_precision = forecast_precision
        self.forecast_recall = forecast_recall
        self._rng = random.Random(splitmix64(seed ^ 0x5CA1_E0DD))
        self._samples: List[Tuple[float, float]] = []  # (t, load/server)
        self._last_action_at = float("-inf")
        #: While set, observe() discards fresh samples (stale-autoscaler
        #: chaos): plans keep extrapolating a frozen signal.
        self._frozen_until: Optional[float] = None
        self.scale_outs = 0
        self.scale_ins = 0

    # ------------------------------------------------------------ sensing
    def freeze(self, until: float) -> None:
        """Chaos hook: the load signal stops updating until ``until``."""
        self._frozen_until = until

    def observe(self, now: float, active_flows: int, working: int) -> None:
        """Feed one load sample (mean active flows per working server)."""
        if self._frozen_until is not None:
            if now < self._frozen_until:
                return
            self._frozen_until = None
        load = active_flows / working if working else float(active_flows)
        self._samples.append((now, load))
        if len(self._samples) > self.window:
            del self._samples[0]

    def forecast(self, now: float) -> Optional[float]:
        """Least-squares linear extrapolation ``lead_time_s`` ahead."""
        if len(self._samples) < 2:
            return self._samples[-1][1] if self._samples else None
        ts = [t for t, _ in self._samples]
        ys = [y for _, y in self._samples]
        n = len(ts)
        mt = sum(ts) / n
        my = sum(ys) / n
        var = sum((t - mt) ** 2 for t in ts)
        if var == 0:
            return ys[-1]
        slope = sum((t - mt) * (y - my) for t, y in zip(ts, ys)) / var
        return my + slope * (now + self.lead_time_s - mt)

    # ----------------------------------------------------------- planning
    def plan(self, now: float, working: int) -> Optional[ScaleDecision]:
        """Decide whether to launch or retire servers.

        Returns ``None`` inside the cooldown window, with an unusable
        forecast, or while load sits between the watermarks (hysteresis
        band).  A ``launch`` decision carries the seeded forecast-quality
        draws: ``announced=False`` models a recall miss, ``phantoms > 0``
        models precision misses.
        """
        if now - self._last_action_at < self.cooldown_s:
            return None
        predicted = self.forecast(now)
        if predicted is None or working <= 0:
            return None
        # predicted is load *per server*; the server count that brings it
        # back to target is current_total_load / target_load.
        desired = predicted * working / self.target_load
        if predicted > self.high_watermark * self.target_load:
            want = min(
                self.max_step,
                max(1, round(desired) - working),
            )
            self._last_action_at = now
            self.scale_outs += 1
            announced = sum(
                1
                for _ in range(want)
                if self._rng.random() < self.forecast_recall
            )
            phantoms = 0
            if self.forecast_precision < 1.0:
                # precision = matched / (matched + phantom): each genuine
                # announcement drags (1-p)/p expected phantoms with it.
                odds = (1.0 - self.forecast_precision) / self.forecast_precision
                whole = int(odds)
                for _ in range(announced):
                    phantoms += whole + (
                        1 if self._rng.random() < odds - whole else 0
                    )
            return ScaleDecision("launch", want, announced, phantoms)
        if predicted < self.low_watermark * self.target_load and working > 1:
            want = min(self.max_step, working - 1)
            self._last_action_at = now
            self.scale_ins += 1
            return ScaleDecision("retire", want, announced=0)
        return None
