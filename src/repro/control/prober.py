"""Health-probe-driven membership: backends leave W on evidence.

The seed simulator removes a crashed server from W by fiat -- the fault
injector edits the membership directly, as if the dataplane had a perfect
failure detector.  Real membership is *evidence-based*: a prober pings
every working server each interval, a probe either answers within its
timeout or it doesn't, and only ``fail_threshold`` consecutive misses
evict the server.  Detection therefore lags the failure by roughly
``fail_threshold * interval``, and during that lag the dataplane keeps
dispatching flows at a dead server -- the blackhole window that
closed-loop runs must (and do) account for.

Probes themselves traverse the same flaky network: with
``loss_probability`` (or a chaos-injected :meth:`degrade` window) a probe
to a *healthy* server can be lost, and enough consecutive losses evict a
live backend -- a false positive the consecutive-failure threshold is
there to damp.  Readmission is symmetric: ``recover_threshold``
consecutive successful probes mark the server recovered, then
:class:`~repro.faults.health.HealthMonitor` probation (exponential
backoff for repeat offenders) delays the actual rejoin, which arrives as
a proper horizon addition.

Everything is deterministic: one RNG seeded via ``splitmix64``, servers
probed in sorted-name order, readmissions ordered by
``(eligible_time, name)`` so two servers recovering in the same tick
rejoin in a stable order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.interfaces import Name
from repro.faults.health import HealthMonitor
from repro.hashing.mix import splitmix64


def _name_key(name: Name) -> str:
    """Total order over names that may mix ints and strings (baseline
    servers are ints; autoscaled ones are strings like ``auto3``)."""
    return str(name)


@dataclass
class ProbeStats:
    sent: int = 0
    lost: int = 0            # probes the network dropped
    failed: int = 0          # probes a dead server could not answer
    evictions: int = 0       # servers removed from W on evidence
    false_evictions: int = 0  # evictions of servers that were actually up
    readmissions: int = 0


@dataclass
class _Target:
    consecutive_failures: int = 0
    consecutive_successes: int = 0
    evicted: bool = False
    eligible_at: float = 0.0  # earliest readmission time once recovered


class HealthProber:
    """Periodic probes with timeout semantics and probation readmission."""

    def __init__(
        self,
        is_up: Callable[[Name], bool],
        fail_threshold: int = 3,
        recover_threshold: int = 2,
        loss_probability: float = 0.0,
        monitor: Optional[HealthMonitor] = None,
        seed: int = 0,
        loss_by_target: Optional[Dict[Name, float]] = None,
    ):
        if fail_threshold < 1 or recover_threshold < 1:
            raise ValueError("thresholds must be >= 1")
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError("loss_probability must be in [0, 1)")
        for name, extra in (loss_by_target or {}).items():
            if not 0.0 <= extra < 1.0:
                raise ValueError(f"loss_by_target[{name!r}] must be in [0, 1)")
        #: Ground truth oracle: does the server answer a probe right now?
        self.is_up = is_up
        self.fail_threshold = fail_threshold
        self.recover_threshold = recover_threshold
        self.loss_probability = loss_probability
        #: Asymmetric probe paths (multi-region scenarios): extra loss
        #: probability per server, composed with the global/chaos rates.
        self.loss_by_target: Dict[Name, float] = dict(loss_by_target or {})
        self.monitor = monitor or HealthMonitor()
        self.stats = ProbeStats()
        self._rng = random.Random(splitmix64(seed ^ 0x9B0B_ED00))
        self._targets: Dict[Name, _Target] = {}
        # Chaos window: extra loss probability until a deadline.
        self._degraded_loss = 0.0
        self._degraded_until = float("-inf")

    # ------------------------------------------------------------- chaos
    def degrade(self, loss_probability: float, until: float) -> None:
        """Probe-loss chaos: raise the loss rate until ``until``."""
        self._degraded_loss = loss_probability
        self._degraded_until = until

    def _loss_now(self, now: float) -> float:
        if now < self._degraded_until:
            # Independent loss sources compose: 1 - (1-a)(1-b).
            return 1.0 - (1.0 - self.loss_probability) * (1.0 - self._degraded_loss)
        return self.loss_probability

    # ----------------------------------------------------------- probing
    def watch(self, name: Name) -> None:
        self._targets.setdefault(name, _Target())

    def forget(self, name: Name) -> None:
        self._targets.pop(name, None)

    def probe_all(self, now: float) -> Tuple[List[Name], List[Name]]:
        """Probe every watched server once; return (evict, readmit) lists.

        ``evict``: servers that just crossed ``fail_threshold`` consecutive
        failed probes -- remove them from W now.  ``readmit``: previously
        evicted servers whose ``recover_threshold`` successes *and*
        probation delay have both elapsed, ordered by
        ``(eligible_time, name)``.
        """
        evict: List[Name] = []
        ready: List[Tuple[float, Name]] = []
        base_loss = self._loss_now(now)
        per_target = self.loss_by_target
        for name in sorted(self._targets, key=_name_key):
            target = self._targets[name]
            self.stats.sent += 1
            answered = self.is_up(name)
            loss = base_loss
            if per_target:
                extra = per_target.get(name, 0.0)
                if extra > 0.0:
                    loss = 1.0 - (1.0 - base_loss) * (1.0 - extra)
            if answered and loss > 0.0 and self._rng.random() < loss:
                answered = False
                self.stats.lost += 1
            elif not answered:
                self.stats.failed += 1
            if answered:
                target.consecutive_failures = 0
                target.consecutive_successes += 1
                if (
                    target.evicted
                    and target.consecutive_successes == self.recover_threshold
                ):
                    # Recovery detected: probation starts counting now.
                    delay = self.monitor.delay_for(self.monitor.failures(name))
                    target.eligible_at = now + delay
                if (
                    target.evicted
                    and target.consecutive_successes >= self.recover_threshold
                    and now >= target.eligible_at
                ):
                    ready.append((target.eligible_at, name))
            else:
                target.consecutive_successes = 0
                target.consecutive_failures += 1
                if (
                    not target.evicted
                    and target.consecutive_failures >= self.fail_threshold
                ):
                    target.evicted = True
                    self.stats.evictions += 1
                    if self.is_up(name):
                        self.stats.false_evictions += 1
                    self.monitor.record_failure(name, now)
                    evict.append(name)
        readmit = [
            name
            for _, name in sorted(ready, key=lambda p: (p[0], _name_key(p[1])))
        ]
        for name in readmit:
            target = self._targets[name]
            target.evicted = False
            target.consecutive_successes = 0
            self.monitor.note_recovered(name, now)
            self.stats.readmissions += 1
        return evict, readmit

    # ------------------------------------------------------------- state
    def is_evicted(self, name: Name) -> bool:
        target = self._targets.get(name)
        return bool(target and target.evicted)

    @property
    def evicted(self) -> List[Name]:
        return sorted(
            (n for n, t in self._targets.items() if t.evicted), key=_name_key
        )
