"""Gossip-based eventually-consistent CT replication for LB pools.

The point-to-point :class:`~repro.faults.channel.SyncChannel` offers every
CT insert to every peer individually: O(n) messages per insert, and a
peer that crashes or partitions simply loses its pending deliveries.
That is fine for a handful of LBs; a large pool on a flaky control
network wants the classic epidemic alternative (the pattern Charon-style
UDP sync and most service meshes use):

- every member assigns its own CT inserts **versioned sequence numbers**
  (an append-only per-origin delta log; a deletion is a **tombstone**
  entry, applied as ``ct.delete`` at peers);
- once per **round** (every ``round_lookups`` pool lookups) each live
  member pushes, to ``fanout`` random peers, every delta *it* knows that
  the peer's per-origin watermark has not covered -- members forward
  third-party deltas, which is what makes dissemination epidemic
  (O(log n) rounds to reach everyone);
- a lost push (probability ``loss_probability``, seeded RNG) backs the
  (src, dst) pair off exponentially **with jitter drawn from the same
  RNG**, so retry storms decorrelate after a partition heals;
- a member that was partitioned (or that joins fresh) is repaired by
  **anti-entropy**: its watermarks simply stopped advancing, so the next
  rounds re-send exactly the missed suffix -- no separate repair protocol,
  and the repaired entries are counted in ``stats.anti_entropy``;
- a member that **crashes** takes state with it: deltas it originated
  that no live member had applied yet are gone (``stats.unreplicated``),
  and deltas still in flight to it are voided (``stats.dropped_targets``);
  both show up in ``stats.lost``, the accounted un-replicated bill.

Convergence is measurable: :meth:`GossipSync.staleness` is the total
number of (member, delta) pairs still undelivered across live members --
the sync-staleness bound the invariant monitor checks goes to zero after
:meth:`drain` (or enough quiet rounds).

``GossipSync`` plugs into :class:`~repro.core.lb_pool.LBPool` as the
``sync=`` channel: it exposes the same ``stats`` / ``on_lookup`` /
``forget_target`` / ``drain`` surface as ``SyncChannel`` plus the
origin-based ``offer`` entry point (``origin_based = True`` tells the
pool to report *who* inserted, which gossip needs and point-to-point
replication does not).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.faults.channel import SyncStats
from repro.hashing.mix import splitmix64


@dataclass
class GossipStats(SyncStats):
    """:class:`SyncStats` plus the gossip-specific counters."""

    rounds: int = 0            # gossip rounds run
    pushes: int = 0            # (src, dst) exchanges attempted
    lost_pushes: int = 0       # exchanges the network dropped
    tombstones: int = 0        # deletion deltas applied at peers
    #: Sum / count of dissemination lag in rounds (delta creation ->
    #: application at a peer), for the convergence-lag report.
    lag_rounds_sum: int = 0
    lag_rounds_count: int = 0

    @property
    def mean_lag_rounds(self) -> float:
        return (
            self.lag_rounds_sum / self.lag_rounds_count
            if self.lag_rounds_count
            else 0.0
        )


@dataclass
class _Delta:
    """One versioned CT change from an origin's append-only log."""

    key: int
    destination: object
    tombstone: bool
    born_round: int


class _MemberState:
    __slots__ = ("member", "log", "partitioned", "repairing")

    def __init__(self, member):
        self.member = member
        self.log: List[_Delta] = []
        self.partitioned = False
        self.repairing = False


class GossipSync:
    """Fanout-k epidemic CT replication with versioned per-origin logs."""

    #: Tells :class:`LBPool` to call :meth:`offer` (with the inserting
    #: member) instead of target-list ``replicate``.
    origin_based = True

    def __init__(
        self,
        fanout: int = 2,
        round_lookups: int = 32,
        loss_probability: float = 0.0,
        backoff_rounds: int = 1,
        seed: int = 0,
    ):
        if fanout < 1:
            raise ValueError("fanout must be >= 1")
        if round_lookups < 1:
            raise ValueError("round_lookups must be >= 1")
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError("loss_probability must be in [0, 1)")
        if backoff_rounds < 1:
            raise ValueError("backoff_rounds must be >= 1")
        self.fanout = fanout
        self.round_lookups = round_lookups
        self.loss_probability = loss_probability
        self.backoff_rounds = backoff_rounds
        self.stats = GossipStats()
        self._rng = random.Random(splitmix64(seed ^ 0x6055_1234))
        self._members: List[_MemberState] = []
        self._by_member: Dict[object, _MemberState] = {}
        # applied[(dst_state, origin_state)] -> highest contiguous seq
        # (1-based index into origin.log) that dst has applied.
        self._applied: Dict[Tuple[int, int], int] = {}
        # Retired origins whose logs live members may still forward.
        self._ghost_logs: List[_MemberState] = []
        # (src_id, dst_id) -> (skip_until_round, consecutive_losses).
        self._defer: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self._lookups = 0
        self._round = 0

    # --------------------------------------------------------- membership
    def register_member(self, member) -> None:
        """Start gossiping with ``member``.  A fresh member's watermarks
        are zero, so anti-entropy pushes it the full pool state."""
        if member in self._by_member:
            return
        state = _MemberState(member)
        self._members.append(state)
        self._by_member[member] = state
        if self.staleness_of(member) > 0 or self._has_any_deltas():
            state.repairing = True

    def _has_any_deltas(self) -> bool:
        return any(s.log for s in self._members + self._ghost_logs)

    def forget_target(self, member) -> int:
        """A member crashed or was removed: void deliveries to it and
        account the deltas only it held.  Returns the voided count."""
        state = self._by_member.pop(member, None)
        if state is None:
            return 0
        self._members.remove(state)
        # Deliveries still owed *to* the dead member are voided.
        owed = self.staleness_of(member, state=state)
        self.stats.dropped_targets += owed
        # Deltas it originated that no live member has applied are gone;
        # truncate its log to the highest live watermark and keep the rest
        # forwardable by survivors (ghost log).
        reached = max(
            (
                self._applied.get((id(peer), id(state)), 0)
                for peer in self._members
            ),
            default=0,
        )
        lost_tail = len(state.log) - reached
        if lost_tail > 0:
            self.stats.unreplicated += lost_tail
            del state.log[reached:]
        if state.log:
            self._ghost_logs.append(state)
        self._defer = {
            pair: value
            for pair, value in self._defer.items()
            if id(state) not in pair
        }
        return owed

    def partition_member(self, member) -> None:
        """Cut ``member`` out of gossip (it keeps serving traffic)."""
        state = self._by_member.get(member)
        if state is not None:
            state.partitioned = True

    def heal_member(self, member) -> None:
        """Re-admit a partitioned member; the missed suffix flows back via
        anti-entropy (its watermarks never advanced)."""
        state = self._by_member.get(member)
        if state is not None and state.partitioned:
            state.partitioned = False
            if self.staleness_of(member, state=state) > 0:
                state.repairing = True

    # ------------------------------------------------------------ sending
    def offer(self, origin, key: int, destination, tombstone: bool = False) -> None:
        """Record one CT change at its origin; rounds disseminate it."""
        state = self._by_member.get(origin)
        if state is None:
            return
        state.log.append(_Delta(key, destination, tombstone, self._round))
        self.stats.offered += max(len(self._live()) - 1, 0)

    def replicate(self, key: int, destination, targets) -> None:
        """Target-list compatibility shim (used by tests/tools that treat
        any channel uniformly): attribute the insert to the first
        registered member not in ``targets``."""
        for state in self._members:
            if state.member not in targets:
                self.offer(state.member, key, destination)
                return

    # ----------------------------------------------------------- delivery
    def on_lookup(self) -> None:
        self._lookups += 1
        if self._lookups % self.round_lookups == 0:
            self.run_round()

    def _live(self) -> List[_MemberState]:
        return [s for s in self._members if not s.partitioned]

    def run_round(self) -> None:
        """One gossip round: every live member pushes to ``fanout`` peers."""
        self._round += 1
        self.stats.rounds += 1
        live = self._live()
        if len(live) < 2:
            return
        for src in live:
            peers = [s for s in live if s is not src]
            count = min(self.fanout, len(peers))
            for dst in self._rng.sample(peers, count):
                self._push(src, dst)

    def _push(self, src: _MemberState, dst: _MemberState) -> None:
        pair = (id(src), id(dst))
        skip_until, losses = self._defer.get(pair, (0, 0))
        if self._round < skip_until:
            return
        payload = self._payload(src, dst)
        if not payload:
            self._defer.pop(pair, None)
            return
        self.stats.pushes += 1
        self.stats.attempted += 1
        if self._rng.random() < self.loss_probability:
            self.stats.lost_pushes += 1
            self.stats.lost_attempts += 1
            self.stats.retries += 1
            backoff = self.backoff_rounds * (1 << min(losses, 6))
            backoff += self._rng.randrange(backoff)  # decorrelating jitter
            self._defer[pair] = (self._round + backoff, losses + 1)
            return
        self._defer.pop(pair, None)
        self._apply(dst, payload)

    def _payload(self, src: _MemberState, dst: _MemberState):
        """Deltas src can forward that dst's watermarks lack."""
        out = []
        for origin in self._members + self._ghost_logs:
            have = (
                len(origin.log)
                if origin is src
                else self._applied.get((id(src), id(origin)), 0)
            )
            if origin in self._ghost_logs and origin is not src:
                # Survivors may forward a dead origin's log up to what
                # they themselves applied (`have` already reflects that).
                pass
            need = self._applied.get((id(dst), id(origin)), 0)
            if origin is dst:
                continue  # a member trivially has its own log
            if have > need:
                out.append((origin, need, have))
        return out

    def _apply(self, dst: _MemberState, payload) -> None:
        ct = getattr(dst.member, "ct", None)
        repaired = 0
        for origin, need, have in payload:
            for seq in range(need + 1, have + 1):
                delta = origin.log[seq - 1]
                if ct is not None:
                    if delta.tombstone:
                        ct.delete(delta.key)
                        self.stats.tombstones += 1
                    else:
                        ct.put(delta.key, delta.destination)
                self.stats.delivered += 1
                self.stats.lag_rounds_sum += self._round - delta.born_round
                self.stats.lag_rounds_count += 1
                repaired += 1
            self._applied[(id(dst), id(origin))] = have
        if dst.repairing and repaired:
            self.stats.anti_entropy += repaired
            if self.staleness_of(dst.member, state=dst) == 0:
                dst.repairing = False

    # --------------------------------------------------------- inspection
    def staleness_of(self, member, state: Optional[_MemberState] = None) -> int:
        """Deltas ``member`` has not yet applied (its convergence debt)."""
        state = state or self._by_member.get(member)
        if state is None:
            return 0
        debt = 0
        for origin in self._members + self._ghost_logs:
            if origin is state:
                continue
            debt += len(origin.log) - self._applied.get(
                (id(state), id(origin)), 0
            )
        return debt

    def staleness(self) -> int:
        """Total undelivered (live member, delta) pairs -- 0 = converged."""
        return sum(self.staleness_of(s.member, state=s) for s in self._live())

    @property
    def converged(self) -> bool:
        return self.staleness() == 0

    @property
    def pending(self) -> int:
        return self.staleness()

    @property
    def degraded(self) -> bool:
        """True once un-replicated state exists (a member died holding
        deltas nobody else had)."""
        return self.stats.unreplicated > 0

    def _available(self, origin: _MemberState) -> int:
        """Highest sequence of ``origin``'s log any live member can push.

        A partitioned origin's unforwarded suffix is unreachable until it
        heals; survivors can forward a ghost origin's log only as far as
        they themselves applied it."""
        live = self._live()
        if any(s is origin for s in live):
            return len(origin.log)
        return max(
            (self._applied.get((id(src), id(origin)), 0) for src in live),
            default=0,
        )

    def _reachable_staleness(self) -> int:
        """The part of :meth:`staleness` gossip can still fix: debt on
        deltas some live member holds.  The remainder is waiting on a
        partition heal (or is gone with a crashed origin)."""
        debt = 0
        for state in self._live():
            for origin in self._members + self._ghost_logs:
                if origin is state:
                    continue
                have = self._applied.get((id(state), id(origin)), 0)
                debt += max(self._available(origin) - have, 0)
        return debt

    # -------------------------------------------------------------- drain
    def drain(self, max_rounds: int = 100_000) -> int:
        """Run rounds (ignoring backoff deferrals) until every delta a
        live member holds has reached every live member.  Returns the
        number of rounds it took; loss still applies per push, so
        convergence is stochastic but certain for ``loss_probability < 1``.
        Debt behind an active partition is *not* waited on -- it drains
        after :meth:`heal_member` (and :meth:`staleness` keeps reporting
        it until then)."""
        start = self._round
        while self._reachable_staleness() > 0:
            if self._round - start >= max_rounds:
                raise RuntimeError("gossip drain did not converge")
            self._defer.clear()
            self.run_round()
            if len(self._live()) < 2:
                break
        return self._round - start
