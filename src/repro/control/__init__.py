"""repro.control -- the closed-loop control plane.

Everything the dataplane (JET, LB pools) takes as given -- who is in W,
what is about to be added (H), which CT entries peers have -- is produced
here by feedback instead of fiat:

- :mod:`repro.control.autoscaler` -- predictive scale-out whose pending
  launches *are* the JET horizon, with a precision/recall scorecard;
- :mod:`repro.control.prober`     -- evidence-based membership via
  periodic health probes with thresholds and probation readmission;
- :mod:`repro.control.gossip`     -- eventually-consistent CT replication
  (fanout-k epidemic rounds, versioned deltas, anti-entropy, tombstones);
- :mod:`repro.control.loop`       -- the periodic tick binding them to
  the event-driven simulator, and :class:`ControlledMembership`, the
  dynamic-|H| replacement for the exogenous HorizonManager.
"""

from repro.control.autoscaler import Autoscaler, HorizonScorecard, ScaleDecision
from repro.control.gossip import GossipStats, GossipSync
from repro.control.loop import ControlledMembership, ControlLoop
from repro.control.prober import HealthProber, ProbeStats

__all__ = [
    "Autoscaler",
    "ControlLoop",
    "ControlledMembership",
    "GossipStats",
    "GossipSync",
    "HealthProber",
    "HorizonScorecard",
    "ProbeStats",
    "ScaleDecision",
]
