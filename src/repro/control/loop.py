"""The closed control loop: probe -> membership -> horizon.

Ties the three control-plane organs to the event-driven simulator:

- :class:`ControlledMembership` replaces the exogenous
  :class:`~repro.sim.backend.HorizonManager`.  The horizon is no longer a
  bounded FIFO of standby identities topped up by fiat -- it is exactly
  the set of *pending membership changes the control plane knows about*:
  autoscaler launches in their lead-time window, plus evicted servers
  awaiting readmission.  ``|H|`` is therefore dynamic, which is the
  realistic reading of the paper's §2.3 contract, and every realized
  addition is scored against the announcements
  (:class:`~repro.control.autoscaler.HorizonScorecard`).
- :class:`ControlLoop` runs every ``interval_s`` of simulated time: it
  fires the :class:`~repro.control.prober.HealthProber` (evidence-based
  evictions and probation-ordered readmissions) and then lets the
  :class:`~repro.control.autoscaler.Autoscaler` plan against the live
  load signal, translating decisions into scheduled joins, phantom
  announcements, and retirements on the simulator.

The loop holds no RNG of its own; all stochastic choices live in the
seeded autoscaler/prober, so a control run is exactly as reproducible as
a plain one.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Sequence, Set

from repro.control.autoscaler import Autoscaler, HorizonScorecard
from repro.control.prober import HealthProber
from repro.core.interfaces import LoadBalancer, Name


class ControlledMembership:
    """Horizon = the control plane's pending changes (a HorizonManager
    stand-in whose ``|H|`` floats with real anticipation)."""

    def __init__(
        self,
        balancers: Sequence[LoadBalancer],
        horizon_cap: int,
    ):
        if horizon_cap < 1:
            raise ValueError("horizon_cap must be >= 1")
        self.balancers: List[LoadBalancer] = list(balancers)
        self.horizon_cap = horizon_cap
        self._fifo: Deque[Name] = deque()
        self._members: Set[Name] = set()
        self._down: Set[Name] = set()
        self.surprise_additions = 0
        self.proper_additions = 0
        #: Announcements that expired (or were revoked) without the server
        #: ever joining W -- wasted tracking.
        self.phantom_announcements = 0
        self.retirements = 0
        #: Announcements revoked by cap overflow while their server was
        #: still pending/down (the eventual realization is a surprise).
        self.revoked_announcements = 0
        self.scorecard = HorizonScorecard()

    # ------------------------------------------------------------ state
    @property
    def members(self) -> frozenset:
        return frozenset(self._members)

    @property
    def down_servers(self) -> frozenset:
        return frozenset(self._down)

    @property
    def horizon_occupancy(self) -> int:
        return len(self._members)

    # ---------------------------------------------------- announcements
    def announce(self, name: Name, in_horizon: bool = False) -> None:
        """The control plane anticipates ``name`` joining W: put it in H.
        On overflow the oldest announcement is evicted (its eventual
        realization becomes a surprise -- the Fig. 4 horizon-too-small
        failure mode, now driven by a cap on *announcements*).

        ``in_horizon=True`` means the CH already holds the name (a just-
        removed working server lands in the horizon as part of
        REMOVEWORKINGSERVER), so only the bookkeeping is added here."""
        if name in self._members:
            return
        self._fifo.append(name)
        self._members.add(name)
        if not in_horizon:
            for lb in self.balancers:
                lb.add_horizon_server(name)
        if len(self._fifo) > self.horizon_cap:
            victim = self._fifo.popleft()
            self._members.discard(victim)
            for lb in self.balancers:
                lb.remove_horizon_server(victim)
            self.revoked_announcements += 1

    def _withdraw(self, name: Name) -> bool:
        """Drop ``name`` from H if present; True when it was announced."""
        if name not in self._members:
            return False
        self._fifo.remove(name)
        self._members.discard(name)
        for lb in self.balancers:
            lb.remove_horizon_server(name)
        return True

    def expire(self, name: Name) -> None:
        """A phantom announcement timed out unrealized."""
        self._withdraw(name)
        self.phantom_announcements += 1
        self.scorecard.phantom += 1

    # ------------------------------------------------------------ churn
    def remove_server(self, name: Name) -> None:
        """Evidence-based eviction: the server leaves W and (because the
        control plane expects it back) is announced into H."""
        self._down.add(name)
        for lb in self.balancers:
            lb.remove_working_server(name)
        # REMOVEWORKINGSERVER already placed the name in the CH horizon.
        self.announce(name, in_horizon=True)

    def recover_server(self, name: Name) -> bool:
        """An evicted server is readmitted.  Proper iff still announced."""
        self._down.discard(name)
        return self._realize(name)

    def realize(self, name: Name) -> bool:
        """An autoscaler launch completes and joins W."""
        return self._realize(name)

    def _realize(self, name: Name) -> bool:
        if name in self._members:
            # Promotion, not withdrawal: the CH moves the name from H to W
            # itself inside add_working_server, so it must still be in the
            # horizon when we call it.
            self._fifo.remove(name)
            self._members.discard(name)
            for lb in self.balancers:
                lb.add_working_server(name)
            self.proper_additions += 1
            self.scorecard.matched += 1
            return True
        for lb in self.balancers:
            lb.force_add_working_server(name)
        self.surprise_additions += 1
        self.scorecard.missed += 1
        return False

    def retire(self, name: Name) -> None:
        """Scale-in: a planned, permanent departure (the server is not
        expected back, so the horizon slot REMOVEWORKINGSERVER gave it is
        immediately revoked)."""
        self._down.discard(name)
        for lb in self.balancers:
            lb.remove_working_server(name)
            lb.remove_horizon_server(name)
        self.retirements += 1


class ControlLoop:
    """Periodic control tick binding prober + autoscaler to a simulation."""

    def __init__(
        self,
        autoscaler: Autoscaler,
        prober: HealthProber,
        interval_s: float = 0.5,
        max_extra: int = 8,
        phantom_ttl_s: float = None,
        name_prefix: str = "auto",
    ):
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.autoscaler = autoscaler
        self.prober = prober
        self.interval_s = interval_s
        self.max_extra = max_extra
        #: How long an unrealized announcement lingers in H before it is
        #: written off as a phantom (default: two lead times).
        self.phantom_ttl_s = (
            phantom_ttl_s
            if phantom_ttl_s is not None
            else 2.0 * autoscaler.lead_time_s
        )
        self.name_prefix = name_prefix
        self.ticks = 0
        self._seq = 0
        self._outstanding = 0  # autoscaled servers alive or launching

    # ----------------------------------------------------------- wiring
    def membership(
        self, balancers: Sequence[LoadBalancer], horizon_cap: int
    ) -> ControlledMembership:
        return ControlledMembership(balancers, horizon_cap)

    def attach(self, sim, working: Iterable[Name]) -> None:
        """Bind the prober's ground-truth oracle and initial watch list."""
        self.prober.is_up = sim.server_responsive
        for name in working:
            self.prober.watch(name)

    # ------------------------------------------------------------- tick
    def tick(self, sim, now: float) -> None:
        self.ticks += 1
        evict, readmit = self.prober.probe_all(now)
        for name in evict:
            sim.evict_server(name, now)
        for name in readmit:
            sim.readmit_server(name, now)
        working = sim.responsive_count
        self.autoscaler.observe(now, sim.active_flows, working)
        decision = self.autoscaler.plan(now, working)
        if decision is None:
            return
        if decision.kind == "launch":
            room = max(self.max_extra - self._outstanding, 0)
            for i in range(min(decision.count, room)):
                self._seq += 1
                name = f"{self.name_prefix}{self._seq}"
                if i < decision.announced:
                    sim.manager.announce(name)
                sim.schedule_join(name, now + self.autoscaler.lead_time_s)
                self._outstanding += 1
            for _ in range(decision.phantoms):
                self._seq += 1
                name = f"{self.name_prefix}{self._seq}"
                sim.manager.announce(name)
                sim.schedule_phantom_expiry(name, now + self.phantom_ttl_s)
        else:
            self._outstanding -= sim.retire_autoscaled(decision.count, now)
