"""Compile a declarative scenario into a runnable simulation config.

The compiler is a pure function of the spec: the same
:class:`~repro.scenarios.spec.ScenarioSpec` always compiles to the same
:class:`~repro.sim.scenario.SimulationConfig` -- fault schedule baked,
zone ranges resolved, weights and per-zone probe loss expanded to
per-server maps -- so a compiled scenario runs byte-stably through the
existing engine (``run_simulation``) and the sharded driver
(``simulate_sharded``) alike.

Timeline lowering (all through :mod:`repro.faults` event kinds; the
engine and injector are unchanged):

- ``rolling_deploy`` -- a sequence of ``group`` events with explicit
  ``targets`` batches and ``downtime`` pinned to the drain window: each
  batch goes down for exactly ``drain_s`` and comes back, marching
  through the fleet at ``interval_s`` spacing;
- ``zone_failure`` -- one ``group`` event whose ``targets`` are the
  zone's whole contiguous server range (correlated power-domain loss);
- ``region_failover`` -- a ``zone_failure`` whose blackout outlasts the
  run by default: the region does not come back, and (in closed-loop
  scenarios) the autoscaler must replace the capacity;
- ``flap_storm`` -- a burst of ``flap`` events (random victims, scripted
  count/interval), optionally spread over ``spread_s``;
- ``probe_blackout`` -- a ``probe_loss`` window blinding the prober;
- ``chaos`` -- background Poisson fault processes via
  :meth:`~repro.faults.events.FaultSchedule.generate` (seeded by the
  scenario seed, so the "random" chaos is part of the scenario identity).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.faults.events import (
    FLAP,
    GROUP,
    PROBE_LOSS,
    FaultEvent,
    FaultSchedule,
)
from repro.scenarios.spec import ScenarioSpec, TimelineEvent
from repro.sim.scenario import SimulationConfig

#: How long past the end of the run a ``region_failover`` blackout lasts
#: by default -- long enough that the region never returns mid-run.
FAILOVER_BLACKOUT_SLACK_S = 60.0


@dataclass(frozen=True)
class CompiledScenario:
    """A scenario lowered to runnable form."""

    spec: ScenarioSpec
    config: SimulationConfig
    #: Zone name -> [start, end) server-name range (empty for flat fleets).
    zone_ranges: Dict[str, Tuple[int, int]]
    #: Pinned keyspace partition (``--workers`` never changes results).
    shards: int


def _zone_targets(ranges: Dict[str, Tuple[int, int]], zone: str) -> Tuple[int, ...]:
    start, end = ranges[zone]
    return tuple(range(start, end))


def _lower_event(
    event: TimelineEvent,
    spec: ScenarioSpec,
    ranges: Dict[str, Tuple[int, int]],
) -> List[FaultEvent]:
    when = event.resolve_time(spec.duration_s)
    params = event.params
    if event.kind == "rolling_deploy":
        count = params.get("servers", spec.fleet.servers)
        count = min(count, spec.fleet.servers)
        batch = params.get("batch", 1)
        interval = float(params["interval_s"])
        drain = float(params["drain_s"])
        events = []
        for step in range(math.ceil(count / batch)):
            targets = tuple(range(step * batch, min((step + 1) * batch, count)))
            events.append(
                FaultEvent(
                    time=when + step * interval,
                    kind=GROUP,
                    targets=targets,
                    downtime=drain,
                )
            )
        return events
    if event.kind == "zone_failure":
        downtime = params.get("downtime_s")
        return [
            FaultEvent(
                time=when,
                kind=GROUP,
                targets=_zone_targets(ranges, params["zone"]),
                downtime=float(downtime) if downtime is not None else None,
            )
        ]
    if event.kind == "region_failover":
        blackout = params.get("blackout_s")
        if blackout is None:
            blackout = spec.duration_s - when + FAILOVER_BLACKOUT_SLACK_S
        return [
            FaultEvent(
                time=when,
                kind=GROUP,
                targets=_zone_targets(ranges, params["zone"]),
                downtime=float(blackout),
            )
        ]
    if event.kind == "flap_storm":
        victims = params["victims"]
        flaps = params.get("flaps", 3)
        interval = float(params["interval_s"])
        spread = float(params.get("spread_s", 0.0))
        gap = spread / victims if victims > 1 and spread > 0 else 0.0
        return [
            FaultEvent(
                time=when + j * gap,
                kind=FLAP,
                flap_count=flaps,
                flap_interval=interval,
            )
            for j in range(victims)
        ]
    if event.kind == "probe_blackout":
        return [
            FaultEvent(
                time=when,
                kind=PROBE_LOSS,
                duration=float(params["duration_s"]),
                intensity=float(params["loss"]),
            )
        ]
    raise AssertionError(f"unhandled timeline kind {event.kind!r}")  # pragma: no cover


def build_fault_schedule(spec: ScenarioSpec) -> Optional[FaultSchedule]:
    """The scenario's full fault schedule: scripted timeline events merged
    with seeded background chaos; ``None`` when the timeline is empty."""
    ranges = spec.fleet.zone_ranges()
    events: List[FaultEvent] = []
    chaos: Optional[FaultSchedule] = None
    for event in spec.timeline:
        if event.kind == "chaos":
            generated = FaultSchedule.generate(
                spec.duration_s, seed=spec.seed, **dict(event.params)
            )
            chaos = generated if chaos is None else chaos.merged(generated)
        else:
            events.extend(_lower_event(event, spec, ranges))
    if not events and chaos is None:
        return None
    schedule = FaultSchedule(tuple(events))
    if chaos is not None:
        schedule = schedule.merged(chaos)
    return schedule


def _fleet_maps(spec: ScenarioSpec):
    """Expand zones into per-server weight and probe-loss maps."""
    weights: Dict[int, float] = {}
    probe_loss: Dict[int, float] = {}
    for zone in spec.fleet.zones:
        start, end = spec.fleet.zone_ranges()[zone.name]
        for server in range(start, end):
            if zone.weight != 1.0:
                weights[server] = zone.weight
            if zone.probe_loss > 0.0:
                probe_loss[server] = zone.probe_loss
    return (weights or None), (probe_loss or None)


def compile_scenario(
    spec: ScenarioSpec, seed: Optional[int] = None
) -> CompiledScenario:
    """Lower a spec to a :class:`CompiledScenario`.

    ``seed`` overrides the spec's seed (sweeps re-seed scenarios without
    editing files); everything downstream -- chaos schedule included --
    derives from the effective seed.
    """
    if seed is not None:
        spec = ScenarioSpec.parse({**spec.to_dict(), "seed": seed})
    weights, probe_loss = _fleet_maps(spec)
    workload = spec.workload
    from repro.sim.persist import dist_from_dict, profile_from_dict

    duration_dist = (
        None if workload.flow_duration == "hadoop"
        else dist_from_dict(dict(workload.flow_duration))
    )
    size_dist = (
        None if workload.flow_size == "hadoop"
        else dist_from_dict(dict(workload.flow_size))
    )
    rate_profile = (
        profile_from_dict(dict(workload.rate_profile))
        if workload.rate_profile is not None
        else None
    )
    control_kwargs: Dict[str, object] = {}
    if spec.control is not None:
        control = spec.control
        control_kwargs = {
            "control": True,
            "control_interval_s": control.interval_s,
            "scale_lead_time_s": control.lead_time_s,
            "autoscale_max": control.autoscale_max,
            "target_load_per_server": control.target_load_per_server,
            "forecast_precision": control.forecast_precision,
            "forecast_recall": control.forecast_recall,
            "probe_fail_threshold": control.probe_fail_threshold,
            "probe_recover_threshold": control.probe_recover_threshold,
            "probe_loss_probability": control.probe_loss_probability,
        }
    config = SimulationConfig(
        duration_s=spec.duration_s,
        connection_rate=workload.connection_rate,
        n_servers=spec.fleet.servers,
        horizon_size=spec.fleet.horizon,
        update_rate_per_min=spec.update_rate_per_min,
        ct_capacity=spec.ct_capacity,
        ct_policy=spec.ct_policy,
        mode=spec.mode,
        ch_family=spec.ch_family,
        ch_kwargs=dict(spec.ch_kwargs),
        server_weights=weights,
        probe_loss_by_server=probe_loss,
        seed=spec.seed,
        sample_interval=spec.sample_interval,
        warmup_s=spec.warmup_s,
        size_dist=size_dist,
        duration_dist=duration_dist,
        rate_profile=rate_profile,
        fault_schedule=build_fault_schedule(spec),
        **control_kwargs,
    )
    return CompiledScenario(
        spec=spec,
        config=config,
        zone_ranges=spec.fleet.zone_ranges(),
        shards=spec.shards,
    )
