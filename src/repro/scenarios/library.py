"""The named scenario library shipped with the package.

Scenarios live as JSON documents in ``repro/scenarios/library/`` (JSON,
not TOML, so Python 3.10 loads them without ``tomllib``).  Each file is
a complete :class:`~repro.scenarios.spec.ScenarioSpec` document; the
file stem must match the spec's ``name`` field so CLI lookups and file
contents can never disagree.
"""

from __future__ import annotations

import os
from typing import Dict, List

from repro.scenarios.spec import ScenarioError, ScenarioSpec, load_file

_SUFFIXES = (".json", ".toml")


def library_dir() -> str:
    return os.path.join(os.path.dirname(os.path.abspath(__file__)), "library")


def scenario_names() -> List[str]:
    """Sorted names of all shipped scenarios."""
    names = []
    for entry in os.listdir(library_dir()):
        stem, ext = os.path.splitext(entry)
        if ext in _SUFFIXES:
            names.append(stem)
    return sorted(names)


def scenario_path(name: str) -> str:
    for suffix in _SUFFIXES:
        path = os.path.join(library_dir(), name + suffix)
        if os.path.exists(path):
            return path
    raise ScenarioError(
        f"scenario {name!r}",
        f"not in the library; available: {scenario_names()}",
    )


def load_scenario(name: str) -> ScenarioSpec:
    """Load one library scenario by name."""
    path = scenario_path(name)
    spec = load_file(path)
    if spec.name != name:
        raise ScenarioError(
            path, f"file is named {name!r} but declares name {spec.name!r}"
        )
    return spec


def load_all() -> Dict[str, ScenarioSpec]:
    return {name: load_scenario(name) for name in scenario_names()}
