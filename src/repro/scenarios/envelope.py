"""Compile a scenario's expected envelope into invariant monitors.

The envelope block of a :class:`~repro.scenarios.spec.ScenarioSpec` is a
statement of what the paper's theory predicts for that scenario; this
module turns it into :mod:`repro.obs.invariants` monitors evaluated over
the run's merged registry at the final snapshot.  Two envelope-specific
monitors are added to the standard suite:

- :class:`BreakageBoundMonitor` -- PCC violations as a fraction of flows
  stay under ``max_breakage`` (inevitable breakage excluded, per the
  paper's Section 2.1 accounting);
- :class:`BalanceCVMonitor` -- the post-warmup max coefficient of
  variation of per-server load (capacity-normalized) stays under
  ``max_balance_cv``.

Monitors read *only* registry series, so the same envelope evaluates
identically over a live run, a sharded merge, or a replayed artifact.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.obs import collectors as M
from repro.obs.invariants import (
    DEFAULT_TOLERANCE,
    GossipConvergenceMonitor,
    HorizonFidelityMonitor,
    InvariantMonitor,
    MonitorResult,
    OccupancyBoundMonitor,
    PCCAccountingMonitor,
    TrackedFractionMonitor,
)
from repro.scenarios.spec import EnvelopeSpec


class BreakageBoundMonitor(InvariantMonitor):
    """PCC violations / flows <= ``max_breakage``.

    Inevitably-broken connections (destination removed outright) are
    excluded: the paper's metric charges the balancer only for breakage
    a perfect tracker could have avoided."""

    name = "breakage_bound"

    def __init__(self, max_breakage: float):
        if max_breakage < 0:
            raise ValueError("max_breakage must be non-negative")
        self.max_breakage = max_breakage

    def evaluate(self, registry) -> MonitorResult:
        flows = registry.value(M.FLOWS)
        if not flows:
            return MonitorResult(
                name=self.name, ok=True, skipped=True, detail="no flow series"
            )
        violations = registry.value(M.PCC_VIOLATIONS) or 0
        fraction = violations / flows
        return MonitorResult(
            name=self.name,
            ok=fraction <= self.max_breakage,
            observed=fraction,
            expected=self.max_breakage,
            detail=(
                f"{violations:.0f} violations / {flows:.0f} flows "
                f"= {fraction:.5f} (bound {self.max_breakage})"
            ),
        )


class BalanceCVMonitor(InvariantMonitor):
    """Post-warmup max load CV (capacity-normalized) <= ``max_balance_cv``."""

    name = "balance_cv"

    def __init__(self, max_balance_cv: float):
        if max_balance_cv < 0:
            raise ValueError("max_balance_cv must be non-negative")
        self.max_balance_cv = max_balance_cv

    def evaluate(self, registry) -> MonitorResult:
        observed = registry.value(M.BALANCE_CV_MAX)
        if observed is None:
            return MonitorResult(
                name=self.name, ok=True, skipped=True, detail="no balance-CV series"
            )
        return MonitorResult(
            name=self.name,
            ok=observed <= self.max_balance_cv,
            observed=observed,
            expected=self.max_balance_cv,
            detail=f"max load CV {observed:.3f} (bound {self.max_balance_cv})",
        )


def envelope_monitors(envelope: EnvelopeSpec) -> List[InvariantMonitor]:
    """The full monitor suite for one scenario: the standard invariants
    parameterized by the envelope, plus the envelope-only bounds."""
    monitors: List[InvariantMonitor] = [
        TrackedFractionMonitor(
            tolerance=envelope.tracked_fraction_tolerance or DEFAULT_TOLERANCE
        ),
        PCCAccountingMonitor(),
        OccupancyBoundMonitor(),
        HorizonFidelityMonitor(
            min_precision=envelope.min_horizon_precision,
            min_recall=envelope.min_horizon_recall,
        ),
        GossipConvergenceMonitor(
            max_staleness=envelope.max_gossip_staleness or 0.0
        ),
    ]
    if envelope.max_breakage is not None:
        monitors.append(BreakageBoundMonitor(envelope.max_breakage))
    if envelope.max_balance_cv is not None:
        monitors.append(BalanceCVMonitor(envelope.max_balance_cv))
    return monitors


def envelope_margins(
    envelope: EnvelopeSpec, results: Sequence[MonitorResult]
) -> Dict[str, Optional[float]]:
    """Headroom left inside each envelope bound (negative = violated).

    Keys are monitor names; a ``None`` margin means the monitor skipped
    (its series was absent at this scale).  Tracked-fraction margin is in
    relative-error units (tolerance minus observed error); the others are
    in the bound's own units.
    """
    by_name = {result.name: result for result in results}
    margins: Dict[str, Optional[float]] = {}

    tracked = by_name.get("tracked_fraction")
    if tracked is not None:
        tolerance = envelope.tracked_fraction_tolerance or DEFAULT_TOLERANCE
        if tracked.skipped or tracked.observed is None or not tracked.expected:
            margins["tracked_fraction"] = None
        else:
            error = abs(tracked.observed - tracked.expected) / tracked.expected
            margins["tracked_fraction"] = tolerance - error

    for name in ("breakage_bound", "balance_cv", "gossip_convergence"):
        result = by_name.get(name)
        if result is None:
            continue
        if result.skipped or result.observed is None or result.expected is None:
            margins[name] = None
        else:
            margins[name] = result.expected - result.observed
    return margins
