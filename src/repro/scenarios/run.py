"""Run compiled scenarios and judge them against their envelopes.

``run_scenario`` is the one entry point: compile the spec, run it
through the existing sharded simulation driver (``--workers`` only
changes process fan-out; the keyspace partition is pinned by the spec),
evaluate the envelope monitors over the merged registry, and return a
:class:`ScenarioReport` carrying the result, the verdicts, and the
headroom left inside each bound.

Byte-stability contract: everything in the report except wall-clock
timing is a pure function of (spec, seed, shards) -- the
:func:`fingerprint` helper hashes exactly that reproducible surface, and
the test suite asserts it is invariant across worker counts.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.obs.invariants import MonitorResult, MonitorSuite, evaluate_and_export
from repro.obs.registry import Registry
from repro.scenarios.compile import CompiledScenario, compile_scenario
from repro.scenarios.envelope import envelope_margins, envelope_monitors
from repro.scenarios.spec import ScenarioSpec
from repro.shard.runner import simulate_sharded
from repro.sim.metrics import SimResult


@dataclass
class ScenarioReport:
    """Outcome of one scenario run."""

    scenario: str
    mode: str
    seed: int
    shards: int
    workers: int
    result: SimResult
    monitors: List[MonitorResult] = field(default_factory=list)
    #: Headroom inside each envelope bound (negative = violated,
    #: None = the monitor skipped at this scale).
    margins: Dict[str, Optional[float]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not any(m.violated for m in self.monitors)

    @property
    def violations(self) -> List[MonitorResult]:
        return [m for m in self.monitors if m.violated]

    def render(self) -> str:
        status = "OK" if self.ok else "ENVELOPE VIOLATED"
        lines = [
            f"scenario {self.scenario} [{self.mode}] seed={self.seed} "
            f"shards={self.shards} workers={self.workers}: {status}",
            f"  {self.result.summary()}",
            MonitorSuite.render(self.monitors),
        ]
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "scenario": self.scenario,
            "mode": self.mode,
            "seed": self.seed,
            "shards": self.shards,
            "workers": self.workers,
            "ok": self.ok,
            "result": asdict(self.result),
            "monitors": MonitorSuite.to_json(self.monitors),
            "margins": self.margins,
        }


def fingerprint(result: SimResult) -> str:
    """A stable serialization of a result's reproducible surface.

    Wall-clock timing is the one field allowed to differ between
    otherwise identical runs, so it is excluded; everything else must be
    byte-identical across worker counts and repeat runs.
    """
    payload = asdict(result)
    payload.pop("wall_seconds", None)
    return json.dumps(payload, sort_keys=True)


def run_compiled(
    compiled: CompiledScenario,
    workers: int = 1,
    registry: Optional[Registry] = None,
) -> ScenarioReport:
    """Run an already-compiled scenario (the compile/run split lets
    callers persist the effective config via ``repro.sim.persist``)."""
    spec = compiled.spec
    own = registry if registry is not None else Registry()
    config = compiled.config.with_(registry=own)
    result = simulate_sharded(config, n_workers=workers, n_shards=compiled.shards)
    monitors = evaluate_and_export(
        own, t=config.duration_s, monitors=envelope_monitors(spec.envelope)
    )
    return ScenarioReport(
        scenario=spec.name,
        mode=spec.mode,
        seed=spec.seed,
        shards=compiled.shards,
        workers=workers,
        result=result,
        monitors=monitors,
        margins=envelope_margins(spec.envelope, monitors),
    )


def run_scenario(
    spec: ScenarioSpec,
    workers: int = 1,
    seed: Optional[int] = None,
    mode: Optional[str] = None,
    duration_s: Optional[float] = None,
    registry: Optional[Registry] = None,
) -> ScenarioReport:
    """Compile and run one scenario.

    ``seed``/``mode``/``duration_s`` override the spec (sweeps and smoke
    runs re-parameterize scenarios without editing files); overrides are
    applied *before* compilation so the chaos schedule and shard seeds
    derive from the effective values.
    """
    overrides = {}
    if mode is not None:
        overrides["mode"] = mode
    if duration_s is not None:
        overrides["duration_s"] = duration_s
    if overrides:
        spec = ScenarioSpec.parse({**spec.to_dict(), **overrides})
    compiled = compile_scenario(spec, seed=seed)
    return run_compiled(compiled, workers=workers, registry=registry)
