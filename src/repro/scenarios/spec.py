"""Declarative scenario specs: schema, strict parsing, round-tripping.

A *scenario* is a production-shaped situation described declaratively --
fleet shape (zones, heterogeneous capacities), workload (rate profile,
flow mixes), a membership/chaos timeline (rolling deploy, correlated
zone failure, flap storms, multi-region failover), and an
**expected-envelope** block stating what the paper's theory predicts for
the run (tracked-fraction band vs |H|/(|W|+|H|), max breakage, balance
CV bound, gossip-staleness decay).  The spec compiles into a
:class:`~repro.sim.scenario.SimulationConfig` plus a scripted
:class:`~repro.faults.events.FaultSchedule` (:mod:`.compile`) and the
envelope compiles into :mod:`repro.obs` invariant monitors
(:mod:`.envelope`) evaluated at run end.

Parsing is **strict**: unknown fields, wrong types, and inconsistent
envelopes are rejected with a :class:`ScenarioError` naming the exact
field path -- a scenario file that parses is a scenario that runs.

Files are JSON (always) or TOML (Python 3.11+, via ``tomllib``); the
library ships JSON so every supported interpreter can load it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

#: LB modes a scenario may select (registry names + the legacy alias).
MODES = ("jet", "full", "stateless", "concury", "jet-p2c", "p2c")

#: Timeline event kinds (see ``compile.py`` for their fault semantics).
TIMELINE_KINDS = (
    "rolling_deploy",
    "zone_failure",
    "region_failover",
    "flap_storm",
    "probe_blackout",
    "chaos",
)


class ScenarioError(ValueError):
    """A scenario spec is malformed; the message names the field path."""

    def __init__(self, path: str, message: str):
        self.path = path
        super().__init__(f"{path}: {message}")


def _require_mapping(value: Any, path: str) -> Mapping[str, Any]:
    if not isinstance(value, Mapping):
        raise ScenarioError(path, f"expected a table/object, got {type(value).__name__}")
    return value


def _check_known(data: Mapping[str, Any], allowed: Tuple[str, ...], path: str) -> None:
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise ScenarioError(
            path,
            f"unknown field(s) {unknown}; expected a subset of {sorted(allowed)}",
        )


def _get(
    data: Mapping[str, Any],
    key: str,
    path: str,
    types: tuple,
    default: Any = None,
    required: bool = False,
    type_name: Optional[str] = None,
):
    if key not in data or data[key] is None:
        if required:
            raise ScenarioError(f"{path}.{key}", "required field is missing")
        return default
    value = data[key]
    # bool is an int subclass; reject it where a number is expected.
    if isinstance(value, bool) and bool not in types:
        raise ScenarioError(f"{path}.{key}", "expected a number, got a boolean")
    if not isinstance(value, types):
        wanted = type_name or "/".join(t.__name__ for t in types)
        raise ScenarioError(
            f"{path}.{key}", f"expected {wanted}, got {type(value).__name__}"
        )
    return value


def _positive(value, path: str, strict: bool = True):
    if value is None:
        return None
    if strict and value <= 0:
        raise ScenarioError(path, f"must be positive, got {value}")
    if not strict and value < 0:
        raise ScenarioError(path, f"must be non-negative, got {value}")
    return value


# ------------------------------------------------------------------ fleet
@dataclass(frozen=True)
class ZoneSpec:
    """One failure domain: ``servers`` backends of capacity ``weight``,
    probed over a path that drops an extra ``probe_loss`` of probes
    (asymmetric-latency regions)."""

    name: str
    servers: int
    weight: float = 1.0
    probe_loss: float = 0.0

    @staticmethod
    def parse(data: Mapping[str, Any], path: str) -> "ZoneSpec":
        data = _require_mapping(data, path)
        _check_known(data, ("name", "servers", "weight", "probe_loss"), path)
        name = _get(data, "name", path, (str,), required=True)
        servers = _get(data, "servers", path, (int,), required=True)
        _positive(servers, f"{path}.servers")
        weight = float(_get(data, "weight", path, (int, float), default=1.0))
        _positive(weight, f"{path}.weight")
        probe_loss = float(_get(data, "probe_loss", path, (int, float), default=0.0))
        if not 0.0 <= probe_loss < 1.0:
            raise ScenarioError(f"{path}.probe_loss", "must be in [0, 1)")
        return ZoneSpec(name=name, servers=servers, weight=weight, probe_loss=probe_loss)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "servers": self.servers,
            "weight": self.weight,
            "probe_loss": self.probe_loss,
        }


@dataclass(frozen=True)
class FleetSpec:
    """Backend fleet shape: either a flat ``servers`` count or a list of
    ``zones`` (contiguous server ranges, in order).  ``horizon`` is the
    exogenous standby horizon size (ignored under closed-loop control,
    where it caps announcements instead)."""

    servers: int
    horizon: int
    zones: Tuple[ZoneSpec, ...] = ()

    @staticmethod
    def parse(data: Mapping[str, Any], path: str = "fleet") -> "FleetSpec":
        data = _require_mapping(data, path)
        _check_known(data, ("servers", "horizon", "zones"), path)
        horizon = _get(data, "horizon", path, (int,), required=True)
        _positive(horizon, f"{path}.horizon")
        zones_raw = _get(data, "zones", path, (list, tuple), default=[])
        zones = tuple(
            ZoneSpec.parse(zone, f"{path}.zones[{i}]")
            for i, zone in enumerate(zones_raw)
        )
        names = [zone.name for zone in zones]
        if len(set(names)) != len(names):
            raise ScenarioError(f"{path}.zones", f"duplicate zone names in {names}")
        servers = _get(data, "servers", path, (int,))
        if zones:
            zone_total = sum(zone.servers for zone in zones)
            if servers is not None and servers != zone_total:
                raise ScenarioError(
                    f"{path}.servers",
                    f"{servers} contradicts the zone total {zone_total}; "
                    "omit it or make them agree",
                )
            servers = zone_total
        elif servers is None:
            raise ScenarioError(f"{path}.servers", "required when no zones are given")
        _positive(servers, f"{path}.servers")
        return FleetSpec(servers=servers, horizon=horizon, zones=zones)

    def zone_ranges(self) -> Dict[str, Tuple[int, int]]:
        """Zone name -> [start, end) over the contiguous integer server
        names the compiler assigns, in declaration order."""
        ranges: Dict[str, Tuple[int, int]] = {}
        offset = 0
        for zone in self.zones:
            ranges[zone.name] = (offset, offset + zone.servers)
            offset += zone.servers
        return ranges

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"servers": self.servers, "horizon": self.horizon}
        if self.zones:
            payload["zones"] = [zone.to_dict() for zone in self.zones]
        return payload


# --------------------------------------------------------------- workload
_DIST_KINDS = ("constant", "exponential", "lognormal", "bounded_pareto", "mixture")


def _parse_dist_spec(data: Any, path: str) -> Any:
    """A distribution spec: the string "hadoop" (paper-calibrated mixture)
    or a dict understood by :mod:`repro.sim.persist`."""
    if isinstance(data, str):
        if data != "hadoop":
            raise ScenarioError(path, f"unknown named distribution {data!r}")
        return data
    data = _require_mapping(data, path)
    kind = data.get("kind")
    if kind not in _DIST_KINDS:
        raise ScenarioError(
            f"{path}.kind", f"expected one of {list(_DIST_KINDS)}, got {kind!r}"
        )
    from repro.sim.persist import PersistError, dist_from_dict

    try:
        dist_from_dict(dict(data))
    except PersistError as exc:
        raise ScenarioError(path, str(exc)) from exc
    except (KeyError, TypeError, ValueError) as exc:
        raise ScenarioError(path, f"bad distribution parameters: {exc}") from exc
    return dict(data)


_PROFILE_KINDS = ("flat", "flash_crowd", "diurnal")


def _parse_profile_spec(data: Any, path: str) -> Dict[str, Any]:
    data = _require_mapping(data, path)
    kind = data.get("kind")
    if kind not in _PROFILE_KINDS:
        raise ScenarioError(
            f"{path}.kind", f"expected one of {list(_PROFILE_KINDS)}, got {kind!r}"
        )
    from repro.sim.persist import PersistError, profile_from_dict

    try:
        profile_from_dict(dict(data))
    except PersistError as exc:
        raise ScenarioError(path, str(exc)) from exc
    except (TypeError, ValueError) as exc:
        raise ScenarioError(path, f"bad rate-profile parameters: {exc}") from exc
    return dict(data)


@dataclass(frozen=True)
class WorkloadSpec:
    """Traffic shape: nominal concurrency, flow duration/size mixes, and
    an optional time-varying rate profile."""

    connection_rate: float
    flow_duration: Any = "hadoop"  # "hadoop" | distribution spec dict
    flow_size: Any = "hadoop"
    rate_profile: Optional[Dict[str, Any]] = None

    @staticmethod
    def parse(data: Mapping[str, Any], path: str = "workload") -> "WorkloadSpec":
        data = _require_mapping(data, path)
        _check_known(
            data, ("connection_rate", "flow_duration", "flow_size", "rate_profile"),
            path,
        )
        rate = _get(data, "connection_rate", path, (int, float), required=True)
        _positive(rate, f"{path}.connection_rate")
        duration = data.get("flow_duration", "hadoop")
        duration = _parse_dist_spec(duration, f"{path}.flow_duration")
        size = data.get("flow_size", "hadoop")
        size = _parse_dist_spec(size, f"{path}.flow_size")
        profile = data.get("rate_profile")
        if profile is not None:
            profile = _parse_profile_spec(profile, f"{path}.rate_profile")
        return WorkloadSpec(
            connection_rate=float(rate),
            flow_duration=duration,
            flow_size=size,
            rate_profile=profile,
        )

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "connection_rate": self.connection_rate,
            "flow_duration": self.flow_duration,
            "flow_size": self.flow_size,
        }
        if self.rate_profile is not None:
            payload["rate_profile"] = self.rate_profile
        return payload


# ---------------------------------------------------------------- control
@dataclass(frozen=True)
class ControlSpec:
    """Closed-loop control-plane settings; presence of the ``control``
    table turns the scenario into a closed-loop run (H = the autoscaler's
    pending launches, membership by probe evidence)."""

    interval_s: float = 0.5
    lead_time_s: float = 5.0
    autoscale_max: int = 8
    target_load_per_server: Optional[float] = None
    forecast_precision: float = 1.0
    forecast_recall: float = 1.0
    probe_fail_threshold: int = 3
    probe_recover_threshold: int = 2
    probe_loss_probability: float = 0.0

    _FIELDS = (
        "interval_s",
        "lead_time_s",
        "autoscale_max",
        "target_load_per_server",
        "forecast_precision",
        "forecast_recall",
        "probe_fail_threshold",
        "probe_recover_threshold",
        "probe_loss_probability",
    )

    @staticmethod
    def parse(data: Mapping[str, Any], path: str = "control") -> "ControlSpec":
        data = _require_mapping(data, path)
        _check_known(data, ControlSpec._FIELDS, path)
        kwargs: Dict[str, Any] = {}
        for key in ("interval_s", "lead_time_s"):
            value = _get(data, key, path, (int, float))
            if value is not None:
                kwargs[key] = float(_positive(value, f"{path}.{key}"))
        for key in ("autoscale_max", "probe_fail_threshold", "probe_recover_threshold"):
            value = _get(data, key, path, (int,))
            if value is not None:
                kwargs[key] = _positive(value, f"{path}.{key}")
        value = _get(data, "target_load_per_server", path, (int, float))
        if value is not None:
            kwargs["target_load_per_server"] = float(_positive(value, f"{path}.target_load_per_server"))
        for key in ("forecast_precision", "forecast_recall", "probe_loss_probability"):
            value = _get(data, key, path, (int, float))
            if value is not None:
                value = float(value)
                if not 0.0 <= value <= 1.0:
                    raise ScenarioError(f"{path}.{key}", "must be in [0, 1]")
                kwargs[key] = value
        return ControlSpec(**kwargs)

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {}
        for key in self._FIELDS:
            value = getattr(self, key)
            if value is not None:
                payload[key] = value
        return payload


# --------------------------------------------------------------- timeline
#: Per-kind allowed fields ("at"/"at_frac" are common to all but chaos).
_TIMELINE_FIELDS: Dict[str, Tuple[str, ...]] = {
    "rolling_deploy": ("servers", "batch", "interval_s", "drain_s"),
    "zone_failure": ("zone", "downtime_s"),
    "region_failover": ("zone", "blackout_s"),
    "flap_storm": ("victims", "flaps", "interval_s", "spread_s"),
    "probe_blackout": ("duration_s", "loss"),
    "chaos": (
        "crash_rate_per_min",
        "flap_rate_per_min",
        "group_rate_per_min",
        "unannounced_rate_per_min",
        "probe_loss_rate_per_min",
        "stale_autoscaler_rate_per_min",
        "group_size",
        "flap_count",
        "flap_interval",
        "fault_duration_s",
        "probe_loss_intensity",
    ),
}


@dataclass(frozen=True)
class TimelineEvent:
    """One scripted membership/chaos timeline entry.

    ``at`` is an absolute simulation time; ``at_frac`` expresses it as a
    fraction of the scenario duration instead (exactly one may be given,
    except for ``chaos``, which is a whole-run background process).
    """

    kind: str
    at: Optional[float] = None
    at_frac: Optional[float] = None
    params: Mapping[str, Any] = field(default_factory=dict)

    @staticmethod
    def parse(data: Mapping[str, Any], path: str) -> "TimelineEvent":
        data = _require_mapping(data, path)
        kind = data.get("kind")
        if kind not in TIMELINE_KINDS:
            raise ScenarioError(
                f"{path}.kind", f"expected one of {list(TIMELINE_KINDS)}, got {kind!r}"
            )
        allowed = ("kind", "at", "at_frac") + _TIMELINE_FIELDS[kind]
        _check_known(data, allowed, path)
        at = _get(data, "at", path, (int, float))
        at_frac = _get(data, "at_frac", path, (int, float))
        if kind == "chaos":
            if at is not None or at_frac is not None:
                raise ScenarioError(
                    path, "chaos is a whole-run background process; drop at/at_frac"
                )
        else:
            if (at is None) == (at_frac is None):
                raise ScenarioError(path, "give exactly one of 'at' or 'at_frac'")
            if at is not None:
                _positive(float(at), f"{path}.at", strict=False)
            if at_frac is not None and not 0.0 <= float(at_frac) <= 1.0:
                raise ScenarioError(f"{path}.at_frac", "must be in [0, 1]")
        params = {
            key: value
            for key, value in data.items()
            if key not in ("kind", "at", "at_frac")
        }
        TimelineEvent._validate_params(kind, params, path)
        return TimelineEvent(
            kind=kind,
            at=float(at) if at is not None else None,
            at_frac=float(at_frac) if at_frac is not None else None,
            params=params,
        )

    @staticmethod
    def _validate_params(kind: str, params: Mapping[str, Any], path: str) -> None:
        def number(key, default=None, required=False, nonneg=False):
            value = _get(params, key, path, (int, float), default=default, required=required)
            if value is not None:
                _positive(float(value), f"{path}.{key}", strict=not nonneg)
            return value

        def integer(key, default=None, required=False):
            value = _get(params, key, path, (int,), default=default, required=required)
            if value is not None:
                _positive(value, f"{path}.{key}")
            return value

        if kind == "rolling_deploy":
            integer("servers")
            integer("batch", default=1)
            number("interval_s", required=True)
            number("drain_s", required=True)
        elif kind == "zone_failure":
            _get(params, "zone", path, (str,), required=True)
            number("downtime_s")
        elif kind == "region_failover":
            _get(params, "zone", path, (str,), required=True)
            number("blackout_s")
        elif kind == "flap_storm":
            integer("victims", required=True)
            integer("flaps", default=3)
            number("interval_s", required=True)
            number("spread_s", nonneg=True)
        elif kind == "probe_blackout":
            number("duration_s", required=True)
            loss = _get(params, "loss", path, (int, float), required=True)
            if not 0.0 < float(loss) < 1.0:
                raise ScenarioError(f"{path}.loss", "must be in (0, 1)")
        elif kind == "chaos":
            for key in _TIMELINE_FIELDS["chaos"]:
                if key in ("group_size", "flap_count"):
                    integer(key)
                elif key == "probe_loss_intensity":
                    value = _get(params, key, path, (int, float))
                    if value is not None and not 0.0 < float(value) < 1.0:
                        raise ScenarioError(f"{path}.{key}", "must be in (0, 1)")
                else:
                    number(key, nonneg=True)
            if not any(key.endswith("_rate_per_min") and params.get(key) for key in params):
                raise ScenarioError(path, "chaos needs at least one positive *_rate_per_min")

    def resolve_time(self, duration_s: float) -> float:
        if self.at is not None:
            return self.at
        return float(self.at_frac) * duration_s  # type: ignore[arg-type]

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"kind": self.kind}
        if self.at is not None:
            payload["at"] = self.at
        if self.at_frac is not None:
            payload["at_frac"] = self.at_frac
        payload.update(self.params)
        return payload


# --------------------------------------------------------------- envelope
@dataclass(frozen=True)
class EnvelopeSpec:
    """The expected envelope: what theory predicts for this scenario.

    Every bound is optional; set ones compile into invariant monitors
    (:func:`repro.scenarios.envelope.envelope_monitors`) evaluated over
    the run's merged registry at the final snapshot:

    - ``tracked_fraction_tolerance``: relative band around the
      flow-weighted |H|/(|W|+|H|) expectation (Theorems 4.2/4.3);
    - ``max_breakage``: PCC violations as a fraction of flows (inevitable
      breakage excluded, per Section 2.1);
    - ``max_balance_cv``: bound on the post-warmup max coefficient of
      variation of per-server load (capacity-normalized);
    - ``max_gossip_staleness``: residual gossip debt allowed at run end;
    - ``min_horizon_precision`` / ``min_horizon_recall``: floors on
      horizon-announcement fidelity (closed-loop runs).
    """

    tracked_fraction_tolerance: Optional[float] = None
    max_breakage: Optional[float] = None
    max_balance_cv: Optional[float] = None
    max_gossip_staleness: Optional[float] = None
    min_horizon_precision: Optional[float] = None
    min_horizon_recall: Optional[float] = None

    _FIELDS = (
        "tracked_fraction_tolerance",
        "max_breakage",
        "max_balance_cv",
        "max_gossip_staleness",
        "min_horizon_precision",
        "min_horizon_recall",
    )

    @staticmethod
    def parse(data: Mapping[str, Any], path: str = "envelope") -> "EnvelopeSpec":
        data = _require_mapping(data, path)
        _check_known(data, EnvelopeSpec._FIELDS, path)
        kwargs: Dict[str, Any] = {}
        for key in ("tracked_fraction_tolerance",):
            value = _get(data, key, path, (int, float))
            if value is not None:
                kwargs[key] = float(_positive(value, f"{path}.{key}"))
        for key in ("max_breakage", "max_balance_cv", "max_gossip_staleness"):
            value = _get(data, key, path, (int, float))
            if value is not None:
                value = float(value)
                _positive(value, f"{path}.{key}", strict=False)
                kwargs[key] = value
        for key in ("min_horizon_precision", "min_horizon_recall"):
            value = _get(data, key, path, (int, float))
            if value is not None:
                value = float(value)
                if not 0.0 <= value <= 1.0:
                    raise ScenarioError(f"{path}.{key}", "must be in [0, 1]")
                kwargs[key] = value
        if kwargs.get("max_breakage") is not None and kwargs["max_breakage"] > 1.0:
            raise ScenarioError(
                f"{path}.max_breakage", "is a fraction of flows; must be <= 1"
            )
        return EnvelopeSpec(**kwargs)

    def bounds(self) -> Dict[str, float]:
        """The set bounds only (stable-keyed, for reports and benches)."""
        return {
            key: getattr(self, key)
            for key in self._FIELDS
            if getattr(self, key) is not None
        }

    def to_dict(self) -> Dict[str, Any]:
        return self.bounds()


# ---------------------------------------------------------------- the spec
_TOP_FIELDS = (
    "name",
    "description",
    "seed",
    "duration_s",
    "mode",
    "ch_family",
    "ch_kwargs",
    "ct_capacity",
    "ct_policy",
    "update_rate_per_min",
    "sample_interval",
    "warmup_s",
    "shards",
    "fleet",
    "workload",
    "control",
    "timeline",
    "envelope",
)


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete declarative scenario."""

    name: str
    duration_s: float
    fleet: FleetSpec
    workload: WorkloadSpec
    description: str = ""
    seed: int = 0
    mode: str = "jet"
    ch_family: str = "anchor"
    ch_kwargs: Mapping[str, Any] = field(default_factory=dict)
    ct_capacity: Optional[int] = None
    ct_policy: str = "lru"
    update_rate_per_min: float = 0.0
    sample_interval: float = 1.0
    warmup_s: Optional[float] = None
    #: Pinned keyspace partition: the flow population is split into this
    #: many shards *regardless of worker count*, so ``--workers`` only
    #: changes process fan-out and results stay byte-stable.
    shards: int = 2
    control: Optional[ControlSpec] = None
    timeline: Tuple[TimelineEvent, ...] = ()
    envelope: EnvelopeSpec = field(default_factory=EnvelopeSpec)

    @staticmethod
    def parse(data: Mapping[str, Any], source: str = "scenario") -> "ScenarioSpec":
        data = _require_mapping(data, source)
        _check_known(data, _TOP_FIELDS, source)
        name = _get(data, "name", source, (str,), required=True)
        path = f"scenario {name!r}" if source == "scenario" else source
        duration = _get(data, "duration_s", path, (int, float), required=True)
        _positive(duration, f"{path}.duration_s")
        mode = _get(data, "mode", path, (str,), default="jet")
        if mode not in MODES:
            raise ScenarioError(f"{path}.mode", f"expected one of {list(MODES)}, got {mode!r}")
        ch_family = _get(data, "ch_family", path, (str,), default="anchor")
        ch_kwargs = dict(_get(data, "ch_kwargs", path, (Mapping,), default={},
                              type_name="table/object"))
        ct_capacity = _get(data, "ct_capacity", path, (int,))
        if ct_capacity is not None:
            _positive(ct_capacity, f"{path}.ct_capacity")
        ct_policy = _get(data, "ct_policy", path, (str,), default="lru")
        update_rate = _get(data, "update_rate_per_min", path, (int, float), default=0.0)
        _positive(float(update_rate), f"{path}.update_rate_per_min", strict=False)
        sample_interval = _get(data, "sample_interval", path, (int, float), default=1.0)
        _positive(float(sample_interval), f"{path}.sample_interval")
        warmup = _get(data, "warmup_s", path, (int, float))
        if warmup is not None:
            _positive(float(warmup), f"{path}.warmup_s", strict=False)
        shards = _get(data, "shards", path, (int,), default=2)
        _positive(shards, f"{path}.shards")
        fleet = FleetSpec.parse(
            _get(data, "fleet", path, (Mapping,), required=True, type_name="table/object"),
            f"{path}.fleet",
        )
        workload = WorkloadSpec.parse(
            _get(data, "workload", path, (Mapping,), required=True, type_name="table/object"),
            f"{path}.workload",
        )
        control = None
        if data.get("control") is not None:
            control = ControlSpec.parse(data["control"], f"{path}.control")
        timeline_raw = _get(data, "timeline", path, (list, tuple), default=[])
        timeline = tuple(
            TimelineEvent.parse(event, f"{path}.timeline[{i}]")
            for i, event in enumerate(timeline_raw)
        )
        envelope = EnvelopeSpec()
        if data.get("envelope") is not None:
            envelope = EnvelopeSpec.parse(data["envelope"], f"{path}.envelope")
        spec = ScenarioSpec(
            name=name,
            duration_s=float(duration),
            fleet=fleet,
            workload=workload,
            description=_get(data, "description", path, (str,), default=""),
            seed=_get(data, "seed", path, (int,), default=0),
            mode=mode,
            ch_family=ch_family,
            ch_kwargs=ch_kwargs,
            ct_capacity=ct_capacity,
            ct_policy=ct_policy,
            update_rate_per_min=float(update_rate),
            sample_interval=float(sample_interval),
            warmup_s=float(warmup) if warmup is not None else None,
            shards=shards,
            control=control,
            timeline=timeline,
            envelope=envelope,
        )
        spec.validate()
        return spec

    def validate(self) -> None:
        """Cross-field consistency (zone references, control dependencies)."""
        path = f"scenario {self.name!r}"
        ranges = self.fleet.zone_ranges()
        for i, event in enumerate(self.timeline):
            event_path = f"{path}.timeline[{i}]"
            zone = event.params.get("zone")
            if zone is not None and zone not in ranges:
                raise ScenarioError(
                    f"{event_path}.zone",
                    f"unknown zone {zone!r}; declared zones: {sorted(ranges)}",
                )
            if event.kind == "probe_blackout" and self.control is None:
                raise ScenarioError(
                    event_path, "probe_blackout needs a [control] block (no prober otherwise)"
                )
            if event.at is not None and event.at > self.duration_s:
                raise ScenarioError(
                    f"{event_path}.at",
                    f"{event.at} is past the scenario duration {self.duration_s}",
                )
        if any(zone.probe_loss > 0 for zone in self.fleet.zones) and self.control is None:
            raise ScenarioError(
                f"{path}.fleet.zones",
                "per-zone probe_loss needs a [control] block (no prober otherwise)",
            )
        if (
            self.envelope.min_horizon_precision is not None
            or self.envelope.min_horizon_recall is not None
        ) and self.control is None and self.update_rate_per_min == 0 and not self.timeline:
            raise ScenarioError(
                f"{path}.envelope",
                "horizon fidelity floors need membership churn (control, "
                "update_rate_per_min, or timeline events) to be judged",
            )

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "name": self.name,
            "duration_s": self.duration_s,
            "fleet": self.fleet.to_dict(),
            "workload": self.workload.to_dict(),
        }
        if self.description:
            payload["description"] = self.description
        for key, default in (
            ("seed", 0),
            ("mode", "jet"),
            ("ch_family", "anchor"),
            ("ct_policy", "lru"),
            ("update_rate_per_min", 0.0),
            ("sample_interval", 1.0),
            ("shards", 2),
        ):
            value = getattr(self, key)
            if value != default:
                payload[key] = value
        if self.ch_kwargs:
            payload["ch_kwargs"] = dict(self.ch_kwargs)
        if self.ct_capacity is not None:
            payload["ct_capacity"] = self.ct_capacity
        if self.warmup_s is not None:
            payload["warmup_s"] = self.warmup_s
        if self.control is not None:
            payload["control"] = self.control.to_dict()
        if self.timeline:
            payload["timeline"] = [event.to_dict() for event in self.timeline]
        bounds = self.envelope.to_dict()
        if bounds:
            payload["envelope"] = bounds
        return payload


# ------------------------------------------------------------ file loading
def loads(text: str, source: str = "scenario") -> ScenarioSpec:
    """Parse a JSON scenario document."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ScenarioError(source, f"invalid JSON: {exc}") from exc
    return ScenarioSpec.parse(data, source)


def load_file(path: str) -> ScenarioSpec:
    """Load a scenario from a ``.json`` or ``.toml`` file.

    TOML needs ``tomllib`` (Python 3.11+); the shipped library is JSON so
    every supported interpreter can read it.
    """
    if path.endswith(".toml"):
        try:
            import tomllib
        except ImportError as exc:  # Python 3.10
            raise ScenarioError(
                path, "TOML scenarios need Python 3.11+ (tomllib); use JSON"
            ) from exc
        with open(path, "rb") as handle:
            try:
                data = tomllib.load(handle)
            except tomllib.TOMLDecodeError as exc:
                raise ScenarioError(path, f"invalid TOML: {exc}") from exc
        return ScenarioSpec.parse(data, path)
    with open(path) as handle:
        return loads(handle.read(), source=path)
