"""repro.scenarios: a declarative production scenario library.

A scenario is a named, versioned description of a production situation
-- fleet shape, workload, membership/chaos timeline -- plus an
*expected envelope* stating what the paper's theory predicts for it.
Specs (:mod:`.spec`) compile (:mod:`.compile`) into the existing
simulation stack unchanged; envelopes compile (:mod:`.envelope`) into
:mod:`repro.obs` invariant monitors; :mod:`.run` executes and judges;
:mod:`.library` ships the named scenarios (``repro scenario list``).
"""

from repro.scenarios.compile import (
    CompiledScenario,
    build_fault_schedule,
    compile_scenario,
)
from repro.scenarios.envelope import (
    BalanceCVMonitor,
    BreakageBoundMonitor,
    envelope_margins,
    envelope_monitors,
)
from repro.scenarios.library import (
    library_dir,
    load_all,
    load_scenario,
    scenario_names,
    scenario_path,
)
from repro.scenarios.run import ScenarioReport, fingerprint, run_compiled, run_scenario
from repro.scenarios.spec import (
    ControlSpec,
    EnvelopeSpec,
    FleetSpec,
    ScenarioError,
    ScenarioSpec,
    TimelineEvent,
    WorkloadSpec,
    ZoneSpec,
    load_file,
    loads,
)

__all__ = [
    "BalanceCVMonitor",
    "BreakageBoundMonitor",
    "CompiledScenario",
    "ControlSpec",
    "EnvelopeSpec",
    "FleetSpec",
    "ScenarioError",
    "ScenarioReport",
    "ScenarioSpec",
    "TimelineEvent",
    "WorkloadSpec",
    "ZoneSpec",
    "build_fault_schedule",
    "compile_scenario",
    "envelope_margins",
    "envelope_monitors",
    "fingerprint",
    "library_dir",
    "load_all",
    "load_file",
    "load_scenario",
    "loads",
    "run_compiled",
    "run_scenario",
    "scenario_names",
    "scenario_path",
]
