"""Fallible CT-synchronization channels for LB pools.

Section 6.2 assumes CT synchronization either doesn't exist or is
perfect and instantaneous.  Real replication (Charon-style UDP gossip,
Katran's map sync) is neither: messages are lost, and delivery lags the
insert by some number of dispatched packets.  :class:`SyncChannel` models
both, deterministically:

- **loss** -- each delivery attempt independently fails with
  ``loss_probability`` (seeded RNG, so runs are reproducible);
- **lag** -- a successful attempt applies at the peer only after
  ``lag_lookups`` further pool lookups (replication lag measured in
  lookups, the natural clock of a trace replay);
- **bounded retry with backoff + jitter** -- a lost attempt is re-queued
  after ``backoff_lookups`` lookups, doubling per attempt, up to
  ``max_retries``; an entry that exhausts its retries is counted in
  ``stats.unreplicated`` and the channel reports itself **degraded**.
  Each re-queue adds a jitter term drawn from the channel's seeded RNG
  (uniform in ``[0, backoff)``): with deterministic delays, every entry
  lost in the same partition retries at the same lookup tick, so a healed
  partition is greeted by a synchronized retry storm across all targets;
  jitter decorrelates the storm while keeping runs bit-reproducible.

``SyncChannel()`` with default arguments is a perfect channel -- lossless
and instantaneous -- which reproduces the seed ``sync=True`` behaviour
bit-for-bit, so :class:`~repro.core.lb_pool.LBPool` uses it as the
``sync=True`` implementation.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.hashing.mix import splitmix64


@dataclass
class SyncStats:
    """Replication-channel counters (the §6.2 sync bill, itemised)."""

    offered: int = 0          # (entry, peer) replications requested
    attempted: int = 0        # delivery attempts, including retries
    delivered: int = 0        # entries applied at a peer
    lost_attempts: int = 0    # attempts the channel dropped
    retries: int = 0          # re-queued attempts
    unreplicated: int = 0     # entries abandoned after max_retries
    dropped_targets: int = 0  # pending entries voided by peer crash/partition
    anti_entropy: int = 0     # entries re-offered to repair a stale rejoiner

    @property
    def delivery_rate(self) -> float:
        return self.delivered / self.offered if self.offered else 1.0

    @property
    def lost(self) -> int:
        """Entries that will never reach a peer: abandoned after retries
        plus pending deliveries voided when their target crashed or
        partitioned.  This is the accounted un-replicated state a PCC
        post-mortem may charge to the sync layer."""
        return self.unreplicated + self.dropped_targets


class SyncChannel:
    """A pluggable, fallible CT replication channel."""

    def __init__(
        self,
        loss_probability: float = 0.0,
        lag_lookups: int = 0,
        max_retries: int = 3,
        backoff_lookups: int = 8,
        seed: int = 0,
    ):
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError("loss_probability must be in [0, 1)")
        if lag_lookups < 0 or max_retries < 0 or backoff_lookups < 1:
            raise ValueError("lag_lookups/max_retries >= 0, backoff_lookups >= 1")
        self.loss_probability = loss_probability
        self.lag_lookups = lag_lookups
        self.max_retries = max_retries
        self.backoff_lookups = backoff_lookups
        self.stats = SyncStats()
        self._rng = random.Random(splitmix64(seed ^ 0x5C4A_77E1))
        self._lookups = 0
        self._seq = 0
        # Pending deliveries: (due_lookup, seq, attempt, key, destination, target).
        self._pending: List[Tuple[int, int, int, int, object, object]] = []
        self._perfect = loss_probability == 0.0 and lag_lookups == 0

    # ------------------------------------------------------------ sending
    def replicate(self, key: int, destination, targets) -> None:
        """Offer one CT entry to every peer in ``targets``."""
        for target in targets:
            self.stats.offered += 1
            if self._perfect:
                self.stats.attempted += 1
                target.ct.put(key, destination)
                self.stats.delivered += 1
            else:
                self._enqueue(self._lookups + self.lag_lookups, 1, key, destination, target)

    def _enqueue(self, due: int, attempt: int, key: int, destination, target) -> None:
        self._seq += 1
        heapq.heappush(self._pending, (due, self._seq, attempt, key, destination, target))

    # ----------------------------------------------------------- delivery
    def on_lookup(self) -> None:
        """Advance the channel clock by one pool lookup; flush due entries."""
        self._lookups += 1
        self._flush(self._lookups)

    def _flush(self, now: int) -> None:
        pending = self._pending
        while pending and pending[0][0] <= now:
            _, _, attempt, key, destination, target = heapq.heappop(pending)
            self._attempt(now, attempt, key, destination, target)

    def _attempt(self, now: int, attempt: int, key: int, destination, target) -> None:
        self.stats.attempted += 1
        if self._rng.random() < self.loss_probability:
            self.stats.lost_attempts += 1
            if attempt > self.max_retries:
                self.stats.unreplicated += 1
                return
            self.stats.retries += 1
            backoff = self.backoff_lookups * (1 << (attempt - 1))
            # Jitter from the channel RNG: deterministic backoff would
            # synchronize retries across every target after a partition
            # heals (a retry storm); the seeded draw keeps reproducibility.
            backoff += self._rng.randrange(backoff)
            self._enqueue(now + backoff, attempt + 1, key, destination, target)
            return
        target.ct.put(key, destination)
        self.stats.delivered += 1

    def repair(self, key: int, destination, target) -> None:
        """Anti-entropy re-offer: push one entry to a rejoined peer.

        Same delivery semantics as :meth:`replicate`, but counted in
        ``stats.anti_entropy`` so experiments can separate the repair
        bill from steady-state replication.
        """
        self.stats.anti_entropy += 1
        self.replicate(key, destination, (target,))

    def drain(self) -> None:
        """Force every pending delivery through now (end-of-run settle).

        Loss still applies per attempt, but backoff collapses to
        immediate, so each entry resolves to delivered or unreplicated.
        """
        while self._pending:
            self._lookups = max(self._lookups, self._pending[0][0])
            self._flush(self._lookups)

    # ---------------------------------------------------------- topology
    def forget_target(self, target) -> int:
        """Void pending deliveries to a crashed/partitioned peer."""
        kept = [p for p in self._pending if p[5] is not target]
        dropped = len(self._pending) - len(kept)
        if dropped:
            heapq.heapify(kept)
            self._pending = kept
            self.stats.dropped_targets += dropped
        return dropped

    # ------------------------------------------------------------- state
    @property
    def pending(self) -> int:
        return len(self._pending)

    @property
    def degraded(self) -> bool:
        """True once any entry was abandoned (un-replicated state exists)."""
        return self.stats.unreplicated > 0
