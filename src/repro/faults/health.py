"""Health monitoring with probation and exponential backoff.

The paper's operational contract (§2.2-2.3) readmits a recovered server
through the horizon: the server is announced in ``H`` *before* it serves
traffic, so JET has tracked every connection its addition could move.
The seed simulator honoured that protocol but readmitted *instantly* --
a flapping backend would cycle through ``W`` as fast as it failed,
shrinking the window in which its identity sits in the horizon and
amplifying unanticipated additions.

:class:`HealthMonitor` inserts a probation stage between "recovered" and
"readmitted":

``HEALTHY --failure--> FAILED --(downtime elapses)--> PROBATION
--(backoff elapses)--> HEALTHY``

Each failure that arrives within ``decay_s`` of the previous one doubles
(``multiplier``) the probation delay, capped at ``cap_s``; a server that
stays healthy for ``decay_s`` resets to the base delay.  The delay is
*added on top of* the natural downtime, so readmission remains a proper
horizon addition -- just a damped one.  The monitor holds no RNG and
performs no I/O; delays are pure functions of the failure history, which
keeps chaos runs bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.interfaces import Name


@dataclass
class _ServerHealth:
    consecutive_failures: int = 0
    last_failure_at: float = 0.0
    in_probation: bool = False


class HealthMonitor:
    """Per-server failure history -> probation delay before readmission."""

    def __init__(
        self,
        base_s: float = 1.0,
        multiplier: float = 2.0,
        cap_s: float = 60.0,
        decay_s: float = 30.0,
    ):
        if base_s < 0 or cap_s < base_s:
            raise ValueError("need 0 <= base_s <= cap_s")
        if multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        self.base_s = base_s
        self.multiplier = multiplier
        self.cap_s = cap_s
        self.decay_s = decay_s
        self._servers: Dict[Name, _ServerHealth] = {}
        #: Total probation delay handed out (for reporting).
        self.total_probation_s = 0.0

    # ------------------------------------------------------------ events
    def record_failure(self, name: Name, now: float) -> float:
        """Note a failure; return the probation delay to add before the
        server may rejoin ``W`` (0.0 for a first, isolated failure)."""
        health = self._servers.setdefault(name, _ServerHealth())
        if health.consecutive_failures and now - health.last_failure_at > self.decay_s:
            health.consecutive_failures = 0  # stable period: history forgiven
        health.consecutive_failures += 1
        health.last_failure_at = now
        health.in_probation = True
        delay = self.delay_for(health.consecutive_failures)
        self.total_probation_s += delay
        return delay

    def note_recovered(self, name: Name, now: float) -> None:
        """The server re-entered ``W`` (its probation, if any, elapsed)."""
        health = self._servers.get(name)
        if health is not None:
            health.in_probation = False

    # ------------------------------------------------------------- state
    def delay_for(self, consecutive_failures: int) -> float:
        """The backoff schedule: 0, base, base*m, base*m^2, ... capped."""
        if consecutive_failures <= 1:
            return 0.0
        return min(
            self.base_s * self.multiplier ** (consecutive_failures - 2), self.cap_s
        )

    def failures(self, name: Name) -> int:
        health = self._servers.get(name)
        return health.consecutive_failures if health else 0

    def in_probation(self, name: Name) -> bool:
        health = self._servers.get(name)
        return bool(health and health.in_probation)
