"""Fault events and deterministic fault schedules.

The §5 simulator models *polite* churn: one server at a time leaves on a
Poisson clock and recovers through the horizon.  Real deployments break
the paper's two standing assumptions -- a known horizon (§2.3) and a
synchronized view of the backend -- in messier ways.  This module gives
those failure modes first-class, seedable event types:

- ``crash``            -- an abrupt single-server failure (like the §5
                          removal process, but driven by the chaos clock
                          and subject to health probation on return);
- ``flap``             -- a server that dies and returns rapidly,
                          ``flap_count`` times at ``flap_interval``
                          spacing (the pathological input for any
                          instantaneous-readmission policy);
- ``group``            -- a correlated failure of ``group_size`` servers
                          at one instant (rack / power-domain loss);
- ``unannounced_add``  -- a brand-new server joins *without ever being in
                          the horizon*, exercising
                          ``force_add_working_server``: the §2.3 contract
                          violation whose breakage JET explicitly does
                          not cover.

Closed-loop runs (:mod:`repro.control`) add three *control-plane* kinds
that degrade the controller's senses instead of the backends: for
``duration`` seconds, ``probe_loss`` drops health probes with probability
``intensity``, ``gossip_partition`` cuts one LB-pool member out of the
gossip CT exchange, and ``stale_autoscaler`` freezes the autoscaler's
load signal so it plans on stale data.

A :class:`FaultSchedule` is an immutable, time-sorted list of
:class:`FaultEvent`; :meth:`FaultSchedule.generate` draws each kind from
an independent Poisson process seeded by ``splitmix64(seed ^ salt)``, so
two schedules built with the same arguments are identical.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.interfaces import Name
from repro.hashing.mix import splitmix64

#: The recognised event kinds (order fixes tie-breaking at equal times).
CRASH = "crash"
FLAP = "flap"
GROUP = "group"
UNANNOUNCED_ADD = "unannounced_add"
# Control-plane faults (repro.control closed-loop runs): they degrade the
# *controller's senses* rather than the backends themselves.
PROBE_LOSS = "probe_loss"            # health probes drop for a window
GOSSIP_PARTITION = "gossip_partition"  # an LB-pool member misses gossip rounds
STALE_AUTOSCALER = "stale_autoscaler"  # the autoscaler's load signal freezes
#: Internal continuation kind (scheduled by the injector, never generated).
GOSSIP_HEAL = "gossip_heal"
KINDS: Tuple[str, ...] = (
    CRASH, FLAP, GROUP, UNANNOUNCED_ADD,
    PROBE_LOSS, GOSSIP_PARTITION, STALE_AUTOSCALER, GOSSIP_HEAL,
)

#: Per-kind seed salts so each Poisson stream is independent.
_SALTS = {
    CRASH: 0xC4A5_11D0,
    FLAP: 0xF1A9_0B57,
    GROUP: 0x6E00_9A2C,
    UNANNOUNCED_ADD: 0x0ADD_ED00,
    PROBE_LOSS: 0x9B0B_E105,
    GOSSIP_PARTITION: 0x6055_1FCC,
    STALE_AUTOSCALER: 0x57A1_EA5C,
}


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``target`` is usually ``None`` (the injector picks a victim from the
    live set at fire time, keeping schedules valid under any churn); flap
    continuations carry the flapping server explicitly.  Scripted
    scenarios (:mod:`repro.scenarios`) pin victims ahead of time instead:
    ``targets`` names the exact victim set of a ``group`` event (a zone,
    a rack) and ``downtime`` overrides the engine's sampled recovery
    delay so a rolling deploy can promise each instance back after a
    fixed drain window.
    """

    time: float
    kind: str
    target: Optional[Name] = None
    group_size: int = 0
    flap_count: int = 0
    flap_interval: float = 0.0
    #: Window length for control-plane faults (probe loss, gossip
    #: partition, stale autoscaler); 0 for instantaneous kinds.
    duration: float = 0.0
    #: Severity knob for control-plane faults (e.g. probe loss probability).
    intensity: float = 0.0
    #: Explicit victim set for ``group`` events (empty = random victims).
    targets: Tuple[Name, ...] = ()
    #: Recovery-delay override for ``crash``/``group`` (None = sampled).
    downtime: Optional[float] = None

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; choose from {KINDS}")
        if self.time < 0:
            raise ValueError("fault time must be non-negative")
        if not isinstance(self.targets, tuple):
            object.__setattr__(self, "targets", tuple(self.targets))
        if self.downtime is not None and self.downtime < 0:
            raise ValueError("fault downtime must be non-negative")


@dataclass(frozen=True)
class FaultSchedule:
    """A time-sorted, immutable sequence of fault events."""

    events: Tuple[FaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self):
        ordered = tuple(
            sorted(self.events, key=lambda e: (e.time, KINDS.index(e.kind)))
        )
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def until(self, horizon_s: float) -> "FaultSchedule":
        """The sub-schedule of events at or before ``horizon_s``."""
        return FaultSchedule(tuple(e for e in self.events if e.time <= horizon_s))

    def merged(self, other: "FaultSchedule") -> "FaultSchedule":
        return FaultSchedule(self.events + tuple(other.events))

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    # ------------------------------------------------------- constructors
    @classmethod
    def at(cls, *events: FaultEvent) -> "FaultSchedule":
        """An explicit scripted schedule (tests, targeted scenarios)."""
        return cls(tuple(events))

    @classmethod
    def generate(
        cls,
        duration_s: float,
        seed: int = 0,
        crash_rate_per_min: float = 0.0,
        flap_rate_per_min: float = 0.0,
        group_rate_per_min: float = 0.0,
        unannounced_rate_per_min: float = 0.0,
        probe_loss_rate_per_min: float = 0.0,
        gossip_partition_rate_per_min: float = 0.0,
        stale_autoscaler_rate_per_min: float = 0.0,
        group_size: int = 3,
        flap_count: int = 3,
        flap_interval: float = 0.5,
        fault_duration_s: float = 5.0,
        probe_loss_intensity: float = 0.5,
    ) -> "FaultSchedule":
        """Draw each fault kind from its own seeded Poisson process."""
        rates = {
            CRASH: crash_rate_per_min,
            FLAP: flap_rate_per_min,
            GROUP: group_rate_per_min,
            UNANNOUNCED_ADD: unannounced_rate_per_min,
            PROBE_LOSS: probe_loss_rate_per_min,
            GOSSIP_PARTITION: gossip_partition_rate_per_min,
            STALE_AUTOSCALER: stale_autoscaler_rate_per_min,
        }
        windowed = (PROBE_LOSS, GOSSIP_PARTITION, STALE_AUTOSCALER)
        events: List[FaultEvent] = []
        for kind, rate_per_min in rates.items():
            if rate_per_min <= 0:
                continue
            rng = random.Random(splitmix64(seed ^ _SALTS[kind]))
            rate = rate_per_min / 60.0
            now = rng.expovariate(rate)
            while now <= duration_s:
                events.append(
                    FaultEvent(
                        time=now,
                        kind=kind,
                        group_size=group_size if kind == GROUP else 0,
                        flap_count=flap_count if kind == FLAP else 0,
                        flap_interval=flap_interval if kind == FLAP else 0.0,
                        duration=fault_duration_s if kind in windowed else 0.0,
                        intensity=probe_loss_intensity if kind == PROBE_LOSS else 0.0,
                    )
                )
                now += rng.expovariate(rate)
        return cls(tuple(events))


def chaos_mix(
    duration_s: float,
    fault_rate_per_min: float,
    seed: int = 0,
    group_size: int = 3,
) -> FaultSchedule:
    """The canonical mixed-fault workload used by the resilience sweep.

    One scalar knob splits into the four kinds with fixed proportions
    (1/2 crash, 1/4 flap, 1/8 group, 1/8 unannounced) so sweeping the
    knob scales *all* failure modes together.
    """
    if fault_rate_per_min <= 0:
        return FaultSchedule()
    return FaultSchedule.generate(
        duration_s,
        seed=seed,
        crash_rate_per_min=fault_rate_per_min / 2,
        flap_rate_per_min=fault_rate_per_min / 4,
        group_rate_per_min=fault_rate_per_min / 8,
        unannounced_rate_per_min=fault_rate_per_min / 8,
        group_size=group_size,
    )


def control_chaos_mix(
    duration_s: float,
    fault_rate_per_min: float,
    seed: int = 0,
    fault_duration_s: float = 5.0,
    probe_loss_intensity: float = 0.6,
) -> FaultSchedule:
    """The closed-loop chaos workload: backend crashes *plus* faults that
    blind the control plane itself (lossy probes, gossip partitions, a
    stale autoscaler signal), in fixed proportions so one knob sweeps the
    whole failure matrix."""
    if fault_rate_per_min <= 0:
        return FaultSchedule()
    return FaultSchedule.generate(
        duration_s,
        seed=seed,
        crash_rate_per_min=fault_rate_per_min / 2,
        probe_loss_rate_per_min=fault_rate_per_min / 4,
        gossip_partition_rate_per_min=fault_rate_per_min / 8,
        stale_autoscaler_rate_per_min=fault_rate_per_min / 8,
        fault_duration_s=fault_duration_s,
        probe_loss_intensity=probe_loss_intensity,
    )
