"""Deterministic fault injection: chaos schedules, health probation, and
fallible CT-sync channels.

The package makes "robustness under adversarial churn" a measurable
dimension: :class:`FaultSchedule` scripts crash / flap / correlated-group
/ unannounced-addition events, :class:`ChaosInjector` applies them inside
:class:`~repro.sim.engine.EventDrivenSimulation`, :class:`HealthMonitor`
gates readmission with exponential-backoff probation, and
:class:`SyncChannel` replaces :class:`~repro.core.lb_pool.LBPool`'s
perfect CT replication with a lossy, lagging, bounded-retry one.
"""

from repro.faults.channel import SyncChannel, SyncStats
from repro.faults.events import (
    CRASH,
    FLAP,
    GOSSIP_PARTITION,
    GROUP,
    KINDS,
    PROBE_LOSS,
    STALE_AUTOSCALER,
    UNANNOUNCED_ADD,
    FaultEvent,
    FaultSchedule,
    chaos_mix,
    control_chaos_mix,
)
from repro.faults.health import HealthMonitor
from repro.faults.injector import ChaosInjector

__all__ = [
    "CRASH",
    "FLAP",
    "GROUP",
    "UNANNOUNCED_ADD",
    "PROBE_LOSS",
    "GOSSIP_PARTITION",
    "STALE_AUTOSCALER",
    "KINDS",
    "FaultEvent",
    "FaultSchedule",
    "chaos_mix",
    "control_chaos_mix",
    "HealthMonitor",
    "ChaosInjector",
    "SyncChannel",
    "SyncStats",
]
