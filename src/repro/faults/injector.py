"""ChaosInjector -- binds a fault schedule to the event-driven simulator.

The injector owns the *semantics* of each fault kind; the simulation
engine only dispatches.  All victim choices draw from the engine's RNG
stream, so a chaos run is exactly as reproducible as a plain one, and a
schedule with zero events leaves the engine's event sequence (and RNG
stream) byte-identical to a no-injector run.

Fault semantics, and the paper assumption each one violates:

- ``crash``: like a §5 removal, but readmission adds the
  :class:`~repro.faults.health.HealthMonitor`'s probation delay on top
  of the sampled downtime (violates *instant recovery*; honours the
  horizon contract).
- ``flap``: a crash whose recovery is near-immediate, repeated
  ``flap_count`` times.  Without probation this thrashes ``W``; with it,
  each cycle doubles the wait (violates the assumption that churn is
  slower than the horizon turnover).
- ``group``: ``group_size`` distinct servers crash at the same instant
  (violates *one change at a time*, §6.1's motivation).
- ``unannounced_add``: a brand-new identity enters ``W`` via
  ``force_add_working_server`` without ever appearing in ``H`` (violates
  the §2.3 known-horizon contract; the connections it re-steers were
  never tracked, so the paper *predicts* their breakage -- the injector
  records that prediction for the resilience experiment to check).
"""

from __future__ import annotations

from typing import Optional

from repro.faults.events import (
    CRASH,
    FLAP,
    GOSSIP_HEAL,
    GOSSIP_PARTITION,
    GROUP,
    PROBE_LOSS,
    STALE_AUTOSCALER,
    UNANNOUNCED_ADD,
    FaultEvent,
    FaultSchedule,
)
from repro.faults.health import HealthMonitor
from repro.obs import metrics as obs_metrics
from repro.obs.registry import coalesce


class ChaosInjector:
    """Applies :class:`FaultSchedule` events to a running simulation."""

    def __init__(
        self,
        schedule: FaultSchedule,
        health: Optional[HealthMonitor] = None,
        fault_window_s: float = 10.0,
        registry=None,
    ):
        self.schedule = schedule
        self.health = health
        #: A PCC violation within this window after any fault is
        #: attributed to the fault (``violations_under_fault``).
        self.fault_window_s = fault_window_s
        self._chaos_births = 0
        self._partitions = 0
        self.obs = coalesce(registry)

    # ------------------------------------------------------------ priming
    def prime(self, sim) -> None:
        """Push every scheduled fault into the engine's event heap."""
        for event in self.schedule:
            if event.time <= sim.duration_s:
                sim.push_fault(event.time, event)

    # ----------------------------------------------------------- dispatch
    def apply(self, sim, event: FaultEvent, now: float) -> None:
        handler = {
            CRASH: self._crash,
            FLAP: self._flap,
            GROUP: self._group,
            UNANNOUNCED_ADD: self._unannounced_add,
            PROBE_LOSS: self._probe_loss,
            GOSSIP_PARTITION: self._gossip_partition,
            GOSSIP_HEAL: self._gossip_heal,
            STALE_AUTOSCALER: self._stale_autoscaler,
        }[event.kind]
        applied = handler(sim, event, now)
        if applied:
            sim.result.fault_events += 1
            sim.note_fault(now)
            self.obs.counter(
                obs_metrics.FAULT_EVENTS, "Fault events applied by kind",
                kind=event.kind,
            ).inc()

    # ----------------------------------------------------------- handlers
    def _crash(self, sim, event: FaultEvent, now: float) -> bool:
        victim = event.target if event.target in sim.up_index else sim.pick_up_server()
        if victim is None:
            return False
        sim.crash_server(victim, now, downtime=event.downtime)
        sim.result.crashes += 1
        return True

    def _flap(self, sim, event: FaultEvent, now: float) -> bool:
        victim = event.target
        if victim is not None and victim not in sim.up_index:
            # Still down (probation damped the flap): drop this cycle.
            return False
        if victim is None:
            victim = sim.pick_up_server()
            if victim is None:
                return False
        recovery_at = sim.crash_server(victim, now, downtime=event.flap_interval)
        sim.result.flaps += 1
        if event.flap_count > 1:
            sim.push_fault(
                recovery_at + event.flap_interval,
                FaultEvent(
                    time=recovery_at + event.flap_interval,
                    kind=FLAP,
                    target=victim,
                    flap_count=event.flap_count - 1,
                    flap_interval=event.flap_interval,
                ),
            )
        return True

    def _group(self, sim, event: FaultEvent, now: float) -> bool:
        crashed = 0
        if event.targets:
            # Scripted victim set (a zone, a rack): crash exactly the
            # listed servers that are still up, in the given order.
            for victim in event.targets:
                if victim not in sim.up_index:
                    continue
                sim.crash_server(victim, now, downtime=event.downtime)
                crashed += 1
        else:
            for _ in range(max(event.group_size, 1)):
                victim = sim.pick_up_server()
                if victim is None:
                    break
                sim.crash_server(victim, now, downtime=event.downtime)
                crashed += 1
        if crashed:
            sim.result.correlated_failures += 1
            sim.result.crashes += crashed
        return crashed > 0

    def _unannounced_add(self, sim, event: FaultEvent, now: float) -> bool:
        self._chaos_births += 1
        name = f"chaos{self._chaos_births}"
        sim.admit_unannounced(name, now)
        return True

    # --------------------------------------- control-plane fault handlers
    # These degrade the controller's *senses*; with no control loop (or no
    # gossip pool) they are no-ops and don't count as applied faults.
    def _probe_loss(self, sim, event: FaultEvent, now: float) -> bool:
        controller = getattr(sim, "controller", None)
        if controller is None:
            return False
        controller.prober.degrade(event.intensity, now + event.duration)
        return True

    def _gossip_channel(self, sim):
        channel = getattr(sim.lb, "channel", None)
        if channel is not None and getattr(channel, "origin_based", False):
            return channel
        return None

    def _gossip_partition(self, sim, event: FaultEvent, now: float) -> bool:
        channel = self._gossip_channel(sim)
        if channel is None:
            return False
        members = sim.lb.members
        if len(members) < 2:
            return False
        self._partitions += 1
        victim = members[self._partitions % len(members)]
        channel.partition_member(victim)
        # The heal is an internal continuation, not a scheduled fault.
        sim.push_fault(
            now + event.duration,
            FaultEvent(
                time=now + event.duration, kind=GOSSIP_HEAL, target=victim
            ),
        )
        return True

    def _gossip_heal(self, sim, event: FaultEvent, now: float) -> bool:
        channel = self._gossip_channel(sim)
        if channel is None:
            return False
        channel.heal_member(event.target)
        return True

    def _stale_autoscaler(self, sim, event: FaultEvent, now: float) -> bool:
        controller = getattr(sim, "controller", None)
        if controller is None:
            return False
        controller.autoscaler.freeze(now + event.duration)
        return True
