"""Balance metrics.

The paper's balance measure (Section 5.1): *maximum oversubscription* --
connections at the most loaded server divided by the average number of
connections per active server.  1.0 is a perfect connection balance
(which, as footnote 6 notes, is still not perfect *load* balance when
flow sizes differ).

Also provides the classic balls-into-bins expectation used by the paper's
footnote 7 sanity check (Raab & Steger): for ``m`` balls in ``n`` bins
with ``m >> n log n``, the maximum is ``m/n + Θ(sqrt(m log n / n))``.
"""

from __future__ import annotations

import math
from typing import Hashable, Mapping


def max_oversubscription(loads: Mapping[Hashable, int], active_servers: int = None) -> float:
    """Max-loaded server divided by the mean over active servers."""
    if not loads:
        return 0.0
    n = active_servers if active_servers is not None else len(loads)
    if n <= 0:
        return 0.0
    total = sum(loads.values())
    if total == 0:
        return 0.0
    return max(loads.values()) / (total / n)


def jains_fairness(loads: Mapping[Hashable, int]) -> float:
    """Jain's fairness index: 1.0 is perfectly fair, 1/n is worst."""
    values = list(loads.values())
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        return 1.0
    return total * total / (len(values) * squares)


def expected_balls_in_bins_max(balls: int, bins: int) -> float:
    """Raab-Steger expectation of the maximum bin occupancy (heavy-load
    regime), for comparing measured oversubscription against theory."""
    if balls <= 0 or bins <= 1:
        return float(balls)
    mean = balls / bins
    return mean + math.sqrt(2 * mean * math.log(bins))


def expected_oversubscription(balls: int, bins: int) -> float:
    """Theoretical maximum oversubscription for uniform random placement."""
    if balls <= 0 or bins <= 0:
        return 0.0
    return expected_balls_in_bins_max(balls, bins) / (balls / bins)
