"""Analytical models of JET's tracking economics.

Closes the loop between Section 4's probabilistic guarantees and the
measured simulations:

- **steady-state CT occupancy**: with Poisson arrivals at rate λ, mean
  flow duration E[D], and tracking probability p = |H|/(|W|+|H|)
  (Theorem 4.2), the active tracked population is an M/G/∞ queue thinned
  by p: ``E[CT] = p · λ · E[D]``.  Untracked-entry retention (entries
  for flows that ended but were not reclaimed) adds ``p · λ · t_retain``
  for a retention horizon ``t_retain`` (0 for ideal eviction, the TTL
  value for a TTL table, unbounded for no eviction).

- **CT sizing rule**: the table size needed for a target overflow
  probability, from the Gaussian approximation of the Poisson occupancy
  (mean m, std sqrt(m)): ``size = m + z · sqrt(m)``.

- **memory-saving factor** vs full CT: ``(1+γ)/γ`` (the Section 4.2
  corollary).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def tracking_probability(n_working: int, n_horizon: int) -> float:
    """Theorem 4.2: P(track) = |H| / (|W| + |H|)."""
    if n_working < 0 or n_horizon < 0 or n_working + n_horizon == 0:
        raise ValueError("need non-negative sizes with a non-empty union")
    return n_horizon / (n_working + n_horizon)


def memory_saving_factor(gamma: float) -> float:
    """Section 4.2: full CT needs a table (1+γ)/γ times larger."""
    if gamma <= 0:
        raise ValueError("gamma must be positive")
    return (1 + gamma) / gamma


@dataclass
class CTOccupancyModel:
    """Expected CT occupancy for a Poisson flow workload under JET."""

    arrival_rate: float        # new connections per second (λ)
    mean_duration: float       # E[D], seconds
    n_working: int
    n_horizon: int
    retention: float = 0.0     # post-completion entry lifetime (seconds)

    def __post_init__(self):
        if self.arrival_rate <= 0 or self.mean_duration <= 0:
            raise ValueError("arrival_rate and mean_duration must be positive")
        if self.retention < 0:
            raise ValueError("retention must be non-negative")

    @property
    def track_probability(self) -> float:
        return tracking_probability(self.n_working, self.n_horizon)

    @property
    def active_connections(self) -> float:
        """Little's law: mean concurrent connections."""
        return self.arrival_rate * self.mean_duration

    @property
    def expected_tracked(self) -> float:
        """Mean CT occupancy: thinned active flows + retained dead entries."""
        live = self.track_probability * self.active_connections
        dead = self.track_probability * self.arrival_rate * self.retention
        return live + dead

    def table_size_for(self, overflow_probability: float = 1e-3) -> int:
        """CT size so occupancy exceeds it with at most the given
        probability (Gaussian tail of the Poisson occupancy)."""
        if not 0 < overflow_probability < 1:
            raise ValueError("overflow_probability must be in (0, 1)")
        mean = self.expected_tracked
        z = _inverse_normal_tail(overflow_probability)
        return math.ceil(mean + z * math.sqrt(max(mean, 1.0)))

    def full_ct_expected(self) -> float:
        """The same occupancy under full CT (track probability 1)."""
        return self.active_connections + self.arrival_rate * self.retention


def _inverse_normal_tail(p: float) -> float:
    """z with P(Z > z) = p for standard normal (Acklam-style rational
    approximation; adequate for sizing rules)."""
    # Inverse CDF at (1 - p) via the Beasley-Springer-Moro approximation.
    q = 1.0 - p
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00)
    p_low = 0.02425
    if q < p_low:
        # q near 0: deep negative quantile (p near 1).
        u = math.sqrt(-2 * math.log(q))
        return (((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) / (
            (((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1
        )
    if q > 1 - p_low:
        # q near 1: deep positive quantile (small tail probability p).
        u = math.sqrt(-2 * math.log(1 - q))
        return -(((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) / (
            (((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1
        )
    u = q - 0.5
    r = u * u
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * u / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1
    )
