"""Measurement aggregation and balance analysis."""

from repro.analysis.stats import MeanStd, aggregate, geometric_mean, loglog_histogram
from repro.analysis.balance import (
    expected_balls_in_bins_max,
    expected_oversubscription,
    jains_fairness,
    max_oversubscription,
)
from repro.analysis.model import (
    CTOccupancyModel,
    memory_saving_factor,
    tracking_probability,
)

__all__ = [
    "MeanStd",
    "aggregate",
    "geometric_mean",
    "loglog_histogram",
    "max_oversubscription",
    "jains_fairness",
    "expected_balls_in_bins_max",
    "expected_oversubscription",
    "CTOccupancyModel",
    "memory_saving_factor",
    "tracking_probability",
]
