"""Statistics helpers for experiment reporting.

The paper reports every trace experiment as ``mean ± std`` over ten
repetitions; these helpers produce that presentation and the log-log
histogram series behind Fig. 6.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class MeanStd:
    """A mean with its (population) standard deviation."""

    mean: float
    std: float
    n: int

    def __format__(self, spec: str) -> str:
        spec = spec or ".3f"
        return f"{self.mean:{spec}} ±{self.std:{spec}}"

    def __str__(self) -> str:
        return format(self)


def aggregate(values: Sequence[float]) -> MeanStd:
    """Mean ± std of repeated measurements."""
    if not values:
        raise ValueError("aggregate needs at least one value")
    n = len(values)
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / n
    return MeanStd(mean, math.sqrt(variance), n)


def loglog_histogram(
    size_histogram: Dict[int, int], bins_per_decade: int = 5
) -> List[Tuple[float, int]]:
    """Bucket a flow-size histogram into logarithmic bins.

    Returns ``(bin_center, flow_count)`` pairs -- the Fig. 6 series.  Sizes
    of 1 get their own bin (mice dominate every trace).
    """
    if not size_histogram:
        return []
    buckets: Dict[int, int] = {}
    for size, count in size_histogram.items():
        if size < 1:
            continue
        bin_index = int(math.floor(math.log10(size) * bins_per_decade)) if size > 1 else -1
        buckets[bin_index] = buckets.get(bin_index, 0) + count
    series = []
    for bin_index in sorted(buckets):
        if bin_index == -1:
            center = 1.0
        else:
            center = 10 ** ((bin_index + 0.5) / bins_per_decade)
        series.append((center, buckets[bin_index]))
    return series


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (used for rate-ratio summaries)."""
    if not values:
        raise ValueError("geometric_mean needs at least one value")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean needs positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
