"""IPv6 connection identifiers.

Modern L4 balancers (Maglev, Katran) are dual-stack; JET is address-
family agnostic since everything downstream consumes the 64-bit key.
This module mirrors :class:`repro.net.flow.FiveTuple` for IPv6: 128-bit
addresses, same canonical-encoding + xxHash64 key derivation (37-byte
encoding, so v4 and v6 tuples can never collide byte-wise).
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import Union

from repro.hashing.xxh import xxhash64
from repro.net.flow import PROTO_TCP, _PROTO_NAMES


def _to_ip6_int(address: Union[str, int]) -> int:
    """Normalize an IPv6 address (string or int) to a uint128."""
    if isinstance(address, int):
        if not 0 <= address < 2**128:
            raise ValueError(f"IPv6 address out of range: {address}")
        return address
    return int(ipaddress.IPv6Address(address))


@dataclass(frozen=True)
class FiveTuple6:
    """An immutable TCP/UDP-over-IPv6 connection identifier."""

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    protocol: int = PROTO_TCP

    def __post_init__(self):
        for ip in (self.src_ip, self.dst_ip):
            if not 0 <= ip < 2**128:
                raise ValueError(f"IPv6 address out of range: {ip}")
        for port in (self.src_port, self.dst_port):
            if not 0 <= port < 65536:
                raise ValueError(f"port out of range: {port}")
        if not 0 <= self.protocol < 256:
            raise ValueError(f"protocol out of range: {self.protocol}")

    @classmethod
    def make(
        cls,
        src_ip: Union[str, int],
        dst_ip: Union[str, int],
        src_port: int,
        dst_port: int,
        protocol: int = PROTO_TCP,
    ) -> "FiveTuple6":
        return cls(_to_ip6_int(src_ip), _to_ip6_int(dst_ip), src_port, dst_port, protocol)

    def encode(self) -> bytes:
        """Canonical 37-byte wire encoding (the hashing input)."""
        return (
            self.src_ip.to_bytes(16, "big")
            + self.dst_ip.to_bytes(16, "big")
            + self.src_port.to_bytes(2, "big")
            + self.dst_port.to_bytes(2, "big")
            + self.protocol.to_bytes(1, "big")
        )

    @property
    def key64(self) -> int:
        """64-bit connection key (xxHash64 of the canonical encoding)."""
        return xxhash64(self.encode())

    def __str__(self) -> str:
        proto = _PROTO_NAMES.get(self.protocol, str(self.protocol))
        return (
            f"[{ipaddress.IPv6Address(self.src_ip)}]:{self.src_port} -> "
            f"[{ipaddress.IPv6Address(self.dst_ip)}]:{self.dst_port}/{proto}"
        )
