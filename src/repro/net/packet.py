"""Packet records: what the LB data plane sees per packet.

A packet carries its connection key (pre-hashed), a flow sequence marker,
and a timestamp.  Traces are streams of these records; the simulator's
packet events reference the same structure.  ``slots`` keeps the per-packet
memory footprint small enough for multi-million-packet traces.
"""

from __future__ import annotations


class Packet:
    """One packet as observed at the load balancer."""

    __slots__ = ("key", "flow_id", "seq", "time")

    def __init__(self, key: int, flow_id: int, seq: int, time: float = 0.0):
        self.key = key          # 64-bit connection key
        self.flow_id = flow_id  # dense per-trace flow index
        self.seq = seq          # 0 for the flow's first packet
        self.time = time        # seconds since trace start

    @property
    def is_first(self) -> bool:
        return self.seq == 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Packet(flow={self.flow_id}, seq={self.seq}, t={self.time:.6f})"
