"""Minimal libpcap-format reader/writer (pure Python).

The paper's trace evaluations consume packet captures (UNI1 / CAIDA).
This module implements the classic pcap container so users can replay
their *own* captures through the library: read frames out of any
little- or big-endian microsecond/nanosecond pcap, and write captures of
synthetic traffic for interchange with standard tools.

Only the container is handled here; header decoding lives in
:mod:`repro.net.parse` and trace conversion in
:func:`repro.traces.from_pcap.trace_from_pcap`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Tuple, Union

MAGIC_USEC_LE = 0xA1B2C3D4
MAGIC_NSEC_LE = 0xA1B23C4D
LINKTYPE_ETHERNET = 1
LINKTYPE_RAW_IPV4 = 228

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")


class PcapError(ValueError):
    """Raised for malformed pcap files."""


@dataclass
class PcapPacket:
    """One captured record: timestamp (seconds, float) + frame bytes."""

    timestamp: float
    data: bytes


def write_pcap(
    path: Union[str, Path],
    packets: Iterator[Tuple[float, bytes]],
    linktype: int = LINKTYPE_ETHERNET,
    snaplen: int = 65535,
) -> int:
    """Write ``(timestamp, frame)`` pairs as a microsecond pcap.

    Returns the number of records written.
    """
    count = 0
    with open(path, "wb") as fh:
        fh.write(_GLOBAL_HEADER.pack(MAGIC_USEC_LE, 2, 4, 0, 0, snaplen, linktype))
        for timestamp, data in packets:
            seconds = int(timestamp)
            micros = int(round((timestamp - seconds) * 1_000_000))
            if micros >= 1_000_000:
                seconds += 1
                micros -= 1_000_000
            captured = data[:snaplen]
            fh.write(_RECORD_HEADER.pack(seconds, micros, len(captured), len(data)))
            fh.write(captured)
            count += 1
    return count


def read_pcap(path: Union[str, Path]) -> Tuple[int, List[PcapPacket]]:
    """Read a pcap file; returns ``(linktype, packets)``.

    Handles both byte orders and both timestamp resolutions.
    """
    with open(path, "rb") as fh:
        raw = fh.read()
    if len(raw) < _GLOBAL_HEADER.size:
        raise PcapError("file shorter than a pcap global header")

    magic_le = struct.unpack("<I", raw[:4])[0]
    magic_be = struct.unpack(">I", raw[:4])[0]
    if magic_le in (MAGIC_USEC_LE, MAGIC_NSEC_LE):
        endian = "<"
        nanos = magic_le == MAGIC_NSEC_LE
    elif magic_be in (MAGIC_USEC_LE, MAGIC_NSEC_LE):
        endian = ">"
        nanos = magic_be == MAGIC_NSEC_LE
    else:
        raise PcapError(f"bad pcap magic 0x{magic_le:08x}")

    header = struct.Struct(endian + "IHHiIII")
    record = struct.Struct(endian + "IIII")
    _, major, _minor, _, _, _snaplen, linktype = header.unpack_from(raw, 0)
    if major != 2:
        raise PcapError(f"unsupported pcap major version {major}")

    divisor = 1e9 if nanos else 1e6
    packets: List[PcapPacket] = []
    offset = header.size
    while offset < len(raw):
        if offset + record.size > len(raw):
            raise PcapError("truncated record header")
        seconds, fraction, incl_len, _orig_len = record.unpack_from(raw, offset)
        offset += record.size
        if offset + incl_len > len(raw):
            raise PcapError("truncated packet data")
        packets.append(
            PcapPacket(seconds + fraction / divisor, raw[offset : offset + incl_len])
        )
        offset += incl_len
    return linktype, packets
