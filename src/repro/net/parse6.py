"""IPv6 header parsing: raw bytes -> :class:`FiveTuple6`.

Handles the fixed IPv6 header plus the common skippable extension
headers (hop-by-hop, routing, destination options), stopping at the
first TCP/UDP header as a fast-path LB parser would.  Fragmented packets
beyond the first fragment are rejected (no L4 header to read).
"""

from __future__ import annotations

from repro.net.flow import PROTO_TCP, PROTO_UDP
from repro.net.flow6 import FiveTuple6
from repro.net.parse import ParseError

ETHERTYPE_IPV6 = 0x86DD
_FIXED_HEADER = 40

# Extension headers a transit parser can skip: hop-by-hop (0),
# routing (43), destination options (60).  Fragment (44) ends parsing
# unless offset 0.
_SKIPPABLE = {0, 43, 60}
_FRAGMENT = 44


def parse_ipv6(packet: bytes) -> FiveTuple6:
    """Parse an IPv6 packet carrying TCP or UDP down to its 5-tuple."""
    if len(packet) < _FIXED_HEADER:
        raise ParseError("packet shorter than an IPv6 header")
    version = packet[0] >> 4
    if version != 6:
        raise ParseError(f"not IPv6 (version={version})")
    src_ip = int.from_bytes(packet[8:24], "big")
    dst_ip = int.from_bytes(packet[24:40], "big")

    next_header = packet[6]
    offset = _FIXED_HEADER
    for _ in range(8):  # bounded extension-header chain walk
        if next_header in (PROTO_TCP, PROTO_UDP):
            break
        if next_header == _FRAGMENT:
            if len(packet) < offset + 8:
                raise ParseError("truncated fragment header")
            frag_offset = int.from_bytes(packet[offset + 2 : offset + 4], "big") >> 3
            if frag_offset != 0:
                raise ParseError("non-first IPv6 fragment has no L4 header")
            next_header = packet[offset]
            offset += 8
            continue
        if next_header in _SKIPPABLE:
            if len(packet) < offset + 8:
                raise ParseError("truncated extension header")
            length = (packet[offset + 1] + 1) * 8
            next_header = packet[offset]
            offset += length
            continue
        raise ParseError(f"unsupported IPv6 next-header {next_header}")
    else:
        raise ParseError("extension-header chain too long")

    l4 = packet[offset:]
    if len(l4) < 4:
        raise ParseError("truncated L4 header")
    return FiveTuple6(
        src_ip,
        dst_ip,
        int.from_bytes(l4[0:2], "big"),
        int.from_bytes(l4[2:4], "big"),
        next_header,
    )


def build_ipv6(five_tuple: FiveTuple6, payload: bytes = b"") -> bytes:
    """Construct a minimal valid IPv6+L4 packet for a 5-tuple."""
    l4_header_len = 20 if five_tuple.protocol == PROTO_TCP else 8
    header = bytearray(_FIXED_HEADER)
    header[0] = 0x60
    header[4:6] = (l4_header_len + len(payload)).to_bytes(2, "big")
    header[6] = five_tuple.protocol
    header[7] = 64  # hop limit
    header[8:24] = five_tuple.src_ip.to_bytes(16, "big")
    header[24:40] = five_tuple.dst_ip.to_bytes(16, "big")

    l4 = bytearray(l4_header_len)
    l4[0:2] = five_tuple.src_port.to_bytes(2, "big")
    l4[2:4] = five_tuple.dst_port.to_bytes(2, "big")
    if five_tuple.protocol == PROTO_TCP:
        l4[12] = 0x50
    else:
        l4[4:6] = (8 + len(payload)).to_bytes(2, "big")
    return bytes(header) + bytes(l4) + payload
