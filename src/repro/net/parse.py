"""Packet header parsing: raw bytes -> 5-tuple.

A real L4 load balancer extracts the connection identifier from wire
headers.  This module implements that data-plane step for the classic
Ethernet / IPv4 / {TCP, UDP} stack -- enough to replay pcap captures
(see :mod:`repro.net.pcap`) through the library's balancers.

Only the fields the LB needs are decoded; anything else is skipped using
the header-length fields, exactly as a fast-path parser would.
"""

from __future__ import annotations

from typing import Optional

from repro.net.flow import PROTO_TCP, PROTO_UDP, FiveTuple

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_VLAN = 0x8100
_ETH_HEADER = 14
_VLAN_TAG = 4


class ParseError(ValueError):
    """Raised when a frame cannot be parsed to a 5-tuple."""


def parse_ethernet(frame: bytes) -> FiveTuple:
    """Parse an Ethernet frame (802.1Q-aware) down to its 5-tuple."""
    if len(frame) < _ETH_HEADER:
        raise ParseError("frame shorter than an Ethernet header")
    ethertype = int.from_bytes(frame[12:14], "big")
    offset = _ETH_HEADER
    if ethertype == ETHERTYPE_VLAN:
        if len(frame) < _ETH_HEADER + _VLAN_TAG:
            raise ParseError("truncated VLAN tag")
        ethertype = int.from_bytes(frame[16:18], "big")
        offset += _VLAN_TAG
    if ethertype != ETHERTYPE_IPV4:
        raise ParseError(f"unsupported ethertype 0x{ethertype:04x}")
    return parse_ipv4(frame[offset:])


def parse_ipv4(packet: bytes) -> FiveTuple:
    """Parse an IPv4 packet carrying TCP or UDP down to its 5-tuple."""
    if len(packet) < 20:
        raise ParseError("packet shorter than an IPv4 header")
    version = packet[0] >> 4
    if version != 4:
        raise ParseError(f"not IPv4 (version={version})")
    ihl = (packet[0] & 0x0F) * 4
    if ihl < 20 or len(packet) < ihl:
        raise ParseError("bad IPv4 header length")
    fragment_offset = int.from_bytes(packet[6:8], "big") & 0x1FFF
    if fragment_offset != 0:
        raise ParseError("non-first IP fragment has no L4 header")
    protocol = packet[9]
    if protocol not in (PROTO_TCP, PROTO_UDP):
        raise ParseError(f"unsupported L4 protocol {protocol}")
    src_ip = int.from_bytes(packet[12:16], "big")
    dst_ip = int.from_bytes(packet[16:20], "big")
    l4 = packet[ihl:]
    if len(l4) < 4:
        raise ParseError("truncated L4 header")
    src_port = int.from_bytes(l4[0:2], "big")
    dst_port = int.from_bytes(l4[2:4], "big")
    return FiveTuple(src_ip, dst_ip, src_port, dst_port, protocol)


def try_parse_ethernet(frame: bytes) -> Optional[FiveTuple]:
    """Best-effort variant: None instead of raising (replay loops)."""
    try:
        return parse_ethernet(frame)
    except ParseError:
        return None


# --------------------------------------------------------------------------
# Synthesis (the inverse direction, for tests and writing captures)
# --------------------------------------------------------------------------

def build_ipv4(five_tuple: FiveTuple, payload: bytes = b"") -> bytes:
    """Construct a minimal valid IPv4+L4 packet for a 5-tuple."""
    l4_header_len = 20 if five_tuple.protocol == PROTO_TCP else 8
    total = 20 + l4_header_len + len(payload)
    header = bytearray(20)
    header[0] = 0x45  # version 4, IHL 5
    header[2:4] = total.to_bytes(2, "big")
    header[8] = 64  # TTL
    header[9] = five_tuple.protocol
    header[12:16] = five_tuple.src_ip.to_bytes(4, "big")
    header[16:20] = five_tuple.dst_ip.to_bytes(4, "big")
    # Header checksum over the 20 bytes (with checksum field zeroed).
    checksum = _ipv4_checksum(bytes(header))
    header[10:12] = checksum.to_bytes(2, "big")

    l4 = bytearray(l4_header_len)
    l4[0:2] = five_tuple.src_port.to_bytes(2, "big")
    l4[2:4] = five_tuple.dst_port.to_bytes(2, "big")
    if five_tuple.protocol == PROTO_TCP:
        l4[12] = 0x50  # data offset 5 words
    else:
        l4[4:6] = (8 + len(payload)).to_bytes(2, "big")
    return bytes(header) + bytes(l4) + payload


def build_ethernet(five_tuple: FiveTuple, payload: bytes = b"") -> bytes:
    """Construct a minimal Ethernet frame for a 5-tuple."""
    eth = bytearray(_ETH_HEADER)
    eth[0:6] = b"\x02\x00\x00\x00\x00\x02"  # locally administered MACs
    eth[6:12] = b"\x02\x00\x00\x00\x00\x01"
    eth[12:14] = ETHERTYPE_IPV4.to_bytes(2, "big")
    return bytes(eth) + build_ipv4(five_tuple, payload)


def _ipv4_checksum(header: bytes) -> int:
    total = 0
    for i in range(0, len(header), 2):
        total += int.from_bytes(header[i : i + 2], "big")
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF
