"""Connection identifiers: TCP/UDP 5-tuples and their 64-bit keys.

Load balancers identify a connection by its 5-tuple.  Everything downstream
of this module (CH, CT, simulators) consumes the *hash* of the identifier,
so :class:`FiveTuple` exposes a cached ``key64`` computed over its canonical
wire encoding with xxHash64 -- stable across processes and platforms.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import Union

from repro.hashing.xxh import xxhash64

PROTO_TCP = 6
PROTO_UDP = 17

_PROTO_NAMES = {PROTO_TCP: "tcp", PROTO_UDP: "udp"}


def _to_ip_int(address: Union[str, int]) -> int:
    """Normalize an IPv4 address (dotted string or int) to a uint32."""
    if isinstance(address, int):
        if not 0 <= address < 2**32:
            raise ValueError(f"IPv4 address out of range: {address}")
        return address
    return int(ipaddress.IPv4Address(address))


@dataclass(frozen=True)
class FiveTuple:
    """An immutable TCP/UDP connection identifier."""

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    protocol: int = PROTO_TCP

    def __post_init__(self):
        for port in (self.src_port, self.dst_port):
            if not 0 <= port < 65536:
                raise ValueError(f"port out of range: {port}")
        if not 0 <= self.protocol < 256:
            raise ValueError(f"protocol out of range: {self.protocol}")

    @classmethod
    def make(
        cls,
        src_ip: Union[str, int],
        dst_ip: Union[str, int],
        src_port: int,
        dst_port: int,
        protocol: int = PROTO_TCP,
    ) -> "FiveTuple":
        """Build from dotted-quad strings or raw ints."""
        return cls(_to_ip_int(src_ip), _to_ip_int(dst_ip), src_port, dst_port, protocol)

    def encode(self) -> bytes:
        """Canonical 13-byte wire encoding (the hashing input)."""
        return (
            self.src_ip.to_bytes(4, "big")
            + self.dst_ip.to_bytes(4, "big")
            + self.src_port.to_bytes(2, "big")
            + self.dst_port.to_bytes(2, "big")
            + self.protocol.to_bytes(1, "big")
        )

    @property
    def key64(self) -> int:
        """64-bit connection key (xxHash64 of the canonical encoding)."""
        return xxhash64(self.encode())

    def __str__(self) -> str:
        proto = _PROTO_NAMES.get(self.protocol, str(self.protocol))
        return (
            f"{ipaddress.IPv4Address(self.src_ip)}:{self.src_port} -> "
            f"{ipaddress.IPv4Address(self.dst_ip)}:{self.dst_port}/{proto}"
        )
