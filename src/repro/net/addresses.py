"""Address pools: deterministic generation of server and client endpoints.

The paper's horizon mechanisms (Section 2.2) revolve around *identities* --
standby server IPs, DNS name pools.  This module provides the identity
substrate: reproducible pools of server addresses ("backend pool") and
random-but-seeded client 5-tuples for workload generation.
"""

from __future__ import annotations

import ipaddress
import random
from typing import Iterator, List

from repro.net.flow import PROTO_TCP, FiveTuple


class ServerPool:
    """A deterministic pool of backend server addresses.

    Servers are named ``base_network + index`` (e.g. ``10.1.0.1:8080``),
    so a pool regenerated elsewhere yields the same identities -- the
    property the "name allocation" horizon strategy relies on.
    """

    def __init__(self, base_network: str = "10.1.0.0/16", port: int = 8080):
        self._network = ipaddress.IPv4Network(base_network)
        self.port = port
        self._allocated = 0

    def allocate(self, count: int = 1) -> List[str]:
        """Hand out the next ``count`` server identities."""
        if self._allocated + count >= self._network.num_addresses - 1:
            raise ValueError("server pool exhausted; use a wider base_network")
        names = []
        base = int(self._network.network_address)
        for _ in range(count):
            self._allocated += 1
            names.append(f"{ipaddress.IPv4Address(base + self._allocated)}:{self.port}")
        return names

    @property
    def allocated(self) -> int:
        return self._allocated


def random_five_tuples(
    count: int,
    seed: int = 0,
    vip: str = "192.0.2.1",
    vip_port: int = 443,
) -> Iterator[FiveTuple]:
    """Yield ``count`` distinct client connections to a single VIP.

    Models the LB's view: many client (ip, port) pairs hitting one virtual
    service endpoint.  Distinctness is enforced so keys are unique flows.
    """
    rng = random.Random(seed)
    dst = int(ipaddress.IPv4Address(vip))
    seen = set()
    produced = 0
    while produced < count:
        src_ip = rng.randrange(1, 2**32 - 1)
        src_port = rng.randrange(1024, 65536)
        pair = (src_ip, src_port)
        if pair in seen:
            continue
        seen.add(pair)
        produced += 1
        yield FiveTuple(src_ip, dst, src_port, vip_port, PROTO_TCP)
