"""Flow, packet, and address models used by simulators and traces."""

from repro.net.flow import PROTO_TCP, PROTO_UDP, FiveTuple
from repro.net.packet import Packet
from repro.net.addresses import ServerPool, random_five_tuples
from repro.net.parse import (
    ParseError,
    build_ethernet,
    build_ipv4,
    parse_ethernet,
    parse_ipv4,
    try_parse_ethernet,
)
from repro.net.pcap import PcapError, PcapPacket, read_pcap, write_pcap
from repro.net.flow6 import FiveTuple6
from repro.net.parse6 import build_ipv6, parse_ipv6

__all__ = [
    "FiveTuple",
    "Packet",
    "ServerPool",
    "random_five_tuples",
    "PROTO_TCP",
    "PROTO_UDP",
    "ParseError",
    "parse_ethernet",
    "parse_ipv4",
    "try_parse_ethernet",
    "build_ethernet",
    "build_ipv4",
    "PcapError",
    "PcapPacket",
    "read_pcap",
    "write_pcap",
    "FiveTuple6",
    "parse_ipv6",
    "build_ipv6",
]
