"""Merge per-shard registry dumps into one observability snapshot.

Each shard worker runs with its own private
:class:`~repro.obs.registry.Registry` (registries hold collector
closures over live balancers and cannot cross a process boundary); what
crosses is ``Registry.dump_series()`` -- plain dicts.  This module folds
those dumps into a single consistent snapshot at the result edge, so the
invariant monitors evaluate over *merged* counters exactly as they would
over a single-process run:

- **counters** sum: shards partition the flow keyspace, so their CT
  lookups/hits/inserts, flow tallies, and violation counts are disjoint
  contributions to the same totals;
- **histograms** sum bucket-wise (bounds must agree);
- **gauges** follow a per-metric rule: extensive state (CT occupancy,
  its peak, capacity) sums across shards, while intensive values
  (expected tracked fraction -- identical in every shard, which shares
  the full membership replica) take the max, which is the shared value;
- **derived gauges** are recomputed from the merged counters rather than
  merged themselves: the observed tracked fraction must be
  ``sum(tracked) / sum(flows)``, not any combination of per-shard ratios.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.obs import collectors as metrics

#: Gauges whose value is extensive (per-shard state that adds up).
GAUGE_SUM = frozenset(
    {
        metrics.CT_OCCUPANCY,
        metrics.CT_OCCUPANCY_PEAK,
        metrics.CT_CAPACITY,
        metrics.GOSSIP_STALENESS,
        # Each shard dispatches a disjoint 1/N of the flows, so the
        # per-backend occupancy gauges add up to the fleet view.
        metrics.BACKEND_ACTIVE_FLOWS,
    }
)

#: Gauges recomputed from merged counters; per-shard values are dropped.
_DERIVED = frozenset({metrics.OBSERVED_TRACKED_FRACTION})

_Key = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(entry: Dict[str, object]) -> _Key:
    labels = entry.get("labels") or {}
    return str(entry["name"]), tuple(sorted((k, str(v)) for k, v in labels.items()))


def merge_series(dumps: Iterable[Sequence[Dict[str, object]]]) -> List[Dict[str, object]]:
    """Combine several ``dump_series`` payloads kind-aware into one."""
    merged: Dict[_Key, Dict[str, object]] = {}
    order: List[_Key] = []
    for dump in dumps:
        for entry in dump:
            name = str(entry["name"])
            key = _key(entry)
            existing = merged.get(key)
            if existing is None:
                copied = dict(entry)
                if "bucket_counts" in copied:
                    copied["bucket_counts"] = list(copied["bucket_counts"])
                merged[key] = copied
                order.append(key)
                continue
            if existing["kind"] != entry["kind"]:
                raise ValueError(
                    f"metric {name!r} merged as both {existing['kind']} "
                    f"and {entry['kind']}"
                )
            kind = entry["kind"]
            if kind == "counter":
                existing["value"] += entry["value"]
            elif kind == "gauge":
                if name in GAUGE_SUM:
                    existing["value"] += entry["value"]
                else:
                    existing["value"] = max(existing["value"], entry["value"])
            elif kind == "histogram":
                if list(existing["bounds"]) != list(entry["bounds"]):
                    raise ValueError(f"histogram {name!r} bucket bounds differ")
                existing["bucket_counts"] = [
                    a + b
                    for a, b in zip(existing["bucket_counts"], entry["bucket_counts"])
                ]
                existing["sum"] += entry["sum"]
                existing["count"] += entry["count"]
            else:
                raise ValueError(f"unknown series kind {kind!r} for {name!r}")
    out = [merged[key] for key in order]
    _recompute_derived(out)
    return out


def _recompute_derived(entries: List[Dict[str, object]]) -> None:
    """Rewrite ratio gauges from the merged counters they derive from."""
    by_name: Dict[str, Dict[str, object]] = {}
    for entry in entries:
        if not entry.get("labels"):
            by_name.setdefault(str(entry["name"]), entry)
    flows = by_name.get(metrics.FLOWS)
    tracked = by_name.get(metrics.TRACKED_FLOWS)
    observed = by_name.get(metrics.OBSERVED_TRACKED_FRACTION)
    if observed is not None and flows is not None and flows["value"]:
        observed["value"] = (tracked["value"] if tracked else 0) / flows["value"]


def load_series(registry, entries: Sequence[Dict[str, object]]) -> None:
    """Fold merged entries into a live registry (additively).

    Counters increment by the merged totals, gauges are set, histograms
    accumulate bucket-wise -- so loading into a fresh registry reproduces
    the merged snapshot exactly, and loading into a registry that already
    carries series composes.
    """
    for entry in entries:
        name = str(entry["name"])
        kind = entry["kind"]
        help_text = str(entry.get("help", ""))
        labels = dict(entry.get("labels") or {})
        if kind == "counter":
            registry.counter(name, help_text, **labels).inc(entry["value"])
        elif kind == "gauge":
            registry.gauge(name, help_text, **labels).set(entry["value"])
        elif kind == "histogram":
            bounds = tuple(entry["bounds"])
            histogram = registry.histogram(name, help_text, buckets=bounds, **labels)
            if tuple(histogram.bounds) != bounds:
                raise ValueError(f"histogram {name!r} bucket bounds differ")
            histogram.bucket_counts = [
                a + b for a, b in zip(histogram.bucket_counts, entry["bucket_counts"])
            ]
            histogram.total += entry["sum"]
            histogram.count += entry["count"]
        else:
            raise ValueError(f"unknown series kind {kind!r} for {name!r}")


def merge_into(registry, dumps: Iterable[Sequence[Dict[str, object]]]) -> None:
    """One-call convenience: merge shard dumps and load them into a registry."""
    load_series(registry, merge_series(dumps))
