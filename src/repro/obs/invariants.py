"""Live invariant monitors: check the paper's theory against telemetry.

Each monitor reads only registry series (never the dataplane directly),
so the same checks run identically over a live run, a replayed JSONL
artifact, or a synthetic registry in tests.  A monitor returns a
:class:`MonitorResult` that is ``ok``, a *violation*, or *skipped*
(required series absent -- e.g. the tracked-fraction check on a
stateless balancer that publishes no expectation gauge).

The three default monitors and the claims they guard:

- :class:`TrackedFractionMonitor` -- Theorems 4.2/4.3: the observed
  fraction of connections JET tracks must lie within a configurable
  relative tolerance of ``|H|/(|W|+|H|)``.
- :class:`PCCAccountingMonitor` -- accounting consistency: PCC
  violations plus inevitably-broken connections cannot exceed the flows
  that were exposed to churn (each backend event can break at most the
  connections active when it fired).
- :class:`OccupancyBoundMonitor` -- the CT never exceeds its capacity
  bound, and its high-water mark never exceeds total inserts.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import List, Optional, Sequence

from repro.obs import collectors as M
from repro.obs.collectors import observed_tracked_fraction

#: Default relative tolerance for the tracked-fraction check (the
#: acceptance bar: observed within 10% of |H|/(|W|+|H|)).
DEFAULT_TOLERANCE = 0.10

#: Below this many flows the binomial noise on the tracked fraction
#: swamps any tolerance worth enforcing; the monitor skips instead.
MIN_FLOWS = 200


@dataclass
class MonitorResult:
    """Outcome of one invariant check."""

    name: str
    ok: bool
    skipped: bool = False
    observed: Optional[float] = None
    expected: Optional[float] = None
    detail: str = ""

    @property
    def violated(self) -> bool:
        return not self.ok and not self.skipped

    def to_json(self) -> dict:
        return asdict(self)

    @staticmethod
    def from_json(payload: dict) -> "MonitorResult":
        return MonitorResult(**payload)


def _skip(name: str, why: str) -> MonitorResult:
    return MonitorResult(name=name, ok=True, skipped=True, detail=why)


class InvariantMonitor:
    """Base: a named check over registry series."""

    name = "invariant"

    def evaluate(self, registry) -> MonitorResult:
        raise NotImplementedError


class TrackedFractionMonitor(InvariantMonitor):
    """Observed tracked fraction within ``tolerance`` of |H|/(|W|+|H|)."""

    name = "tracked_fraction"

    def __init__(self, tolerance: float = DEFAULT_TOLERANCE, min_flows: int = MIN_FLOWS):
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        self.tolerance = tolerance
        self.min_flows = min_flows

    def evaluate(self, registry) -> MonitorResult:
        expected = registry.value(M.EXPECTED_TRACKED_FRACTION)
        if expected is None or expected <= 0:
            return _skip(self.name, "no expectation published (not a JET run)")
        flows = registry.value(M.FLOWS) or 0
        if flows < self.min_flows:
            return _skip(self.name, f"only {flows:.0f} flows (< {self.min_flows})")
        observed = observed_tracked_fraction(registry)
        if observed is None:
            return _skip(self.name, "tracked-flow series absent")
        error = abs(observed - expected) / expected
        return MonitorResult(
            name=self.name,
            ok=error <= self.tolerance,
            observed=observed,
            expected=expected,
            detail=(
                f"|{observed:.4f} - {expected:.4f}| / {expected:.4f} "
                f"= {error:.3f} (tolerance {self.tolerance})"
            ),
        )


class PCCAccountingMonitor(InvariantMonitor):
    """violations + inevitably-broken <= flows exposed to churn."""

    name = "pcc_accounting"

    def evaluate(self, registry) -> MonitorResult:
        exposed = registry.value(M.CHURN_EXPOSED)
        if exposed is None:
            return _skip(self.name, "churn-exposure series absent")
        violations = registry.value(M.PCC_VIOLATIONS) or 0
        inevitable = registry.value(M.INEVITABLY_BROKEN) or 0
        broken = violations + inevitable
        return MonitorResult(
            name=self.name,
            ok=broken <= exposed,
            observed=broken,
            expected=exposed,
            detail=(
                f"violations {violations:.0f} + inevitable {inevitable:.0f} "
                f"vs churn-exposed {exposed:.0f}"
            ),
        )


class OccupancyBoundMonitor(InvariantMonitor):
    """CT occupancy high-water mark respects its bounds."""

    name = "ct_occupancy_bound"

    def evaluate(self, registry) -> MonitorResult:
        peak = registry.value(M.CT_OCCUPANCY_PEAK)
        if peak is None:
            return _skip(self.name, "no CT occupancy series (stateless run)")
        capacity = registry.value(M.CT_CAPACITY)
        inserts = registry.value(M.CT_INSERTS)
        # Bounded tables must honour capacity; any table's peak can never
        # exceed the number of entries ever inserted.
        bound = capacity if capacity is not None else inserts
        if bound is None:
            return _skip(self.name, "no capacity or insert series to bound by")
        label = "capacity" if capacity is not None else "total inserts"
        return MonitorResult(
            name=self.name,
            ok=peak <= bound,
            observed=peak,
            expected=bound,
            detail=f"peak occupancy {peak:.0f} vs {label} {bound:.0f}",
        )


class MonitorSuite:
    """A bundle of monitors evaluated together after (or during) a run."""

    def __init__(self, monitors: Optional[Sequence[InvariantMonitor]] = None):
        self.monitors: List[InvariantMonitor] = (
            list(monitors) if monitors is not None else default_monitors()
        )

    def evaluate(self, registry) -> List[MonitorResult]:
        return [monitor.evaluate(registry) for monitor in self.monitors]

    @staticmethod
    def violations(results: Sequence[MonitorResult]) -> List[MonitorResult]:
        return [r for r in results if r.violated]

    @staticmethod
    def render(results: Sequence[MonitorResult]) -> str:
        lines = []
        for r in results:
            status = "SKIP" if r.skipped else ("ok" if r.ok else "VIOLATION")
            lines.append(f"  [{status:>9}] {r.name}: {r.detail}")
        return "\n".join(lines)

    @staticmethod
    def to_json(results: Sequence[MonitorResult]) -> List[dict]:
        return [r.to_json() for r in results]


def default_monitors(tolerance: float = DEFAULT_TOLERANCE) -> List[InvariantMonitor]:
    return [
        TrackedFractionMonitor(tolerance=tolerance),
        PCCAccountingMonitor(),
        OccupancyBoundMonitor(),
    ]


def evaluate_and_export(
    registry,
    t: float = 0.0,
    tolerance: float = DEFAULT_TOLERANCE,
    monitors: Optional[Sequence[InvariantMonitor]] = None,
) -> List[MonitorResult]:
    """Evaluate the suite and emit the final snapshot to all exporters.

    The closing JSONL line carries ``final: true`` plus the serialized
    monitor results, which is what ``repro obs summarize --strict`` (and
    the CI invariant gate) reads back.
    """
    registry.collect()
    suite = MonitorSuite(monitors or default_monitors(tolerance=tolerance))
    results = suite.evaluate(registry)
    registry.export_snapshot(
        t=t, final=True, invariants=MonitorSuite.to_json(results)
    )
    return results
