"""Live invariant monitors: check the paper's theory against telemetry.

Each monitor reads only registry series (never the dataplane directly),
so the same checks run identically over a live run, a replayed JSONL
artifact, or a synthetic registry in tests.  A monitor returns a
:class:`MonitorResult` that is ``ok``, a *violation*, or *skipped*
(required series absent -- e.g. the tracked-fraction check on a
stateless balancer that publishes no expectation gauge).

The default monitors and the claims they guard:

- :class:`TrackedFractionMonitor` -- Theorems 4.2/4.3: the observed
  fraction of connections JET tracks must lie within a configurable
  relative tolerance of ``|H|/(|W|+|H|)``.
- :class:`PCCAccountingMonitor` -- accounting consistency: PCC
  violations plus inevitably-broken connections cannot exceed the flows
  that were exposed to churn (each backend event can break at most the
  connections active when it fired).
- :class:`OccupancyBoundMonitor` -- the CT never exceeds its capacity
  bound, and its high-water mark never exceeds total inserts.
- :class:`HorizonFidelityMonitor` -- horizon precision/recall (closed-loop
  runs) are within [0, 1], and above configurable floors when the run is
  supposed to have a perfect forecast.
- :class:`GossipConvergenceMonitor` -- the sync-staleness bound: gossip
  CT replication must have converged (staleness zero) by the final
  snapshot; losses must be accounted, not silent.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import List, Optional, Sequence

from repro.obs import collectors as M
from repro.obs.collectors import observed_tracked_fraction

#: Default relative tolerance for the tracked-fraction check (the
#: acceptance bar: observed within 10% of |H|/(|W|+|H|)).
DEFAULT_TOLERANCE = 0.10

#: Below this many flows the binomial noise on the tracked fraction
#: swamps any tolerance worth enforcing; the monitor skips instead.
MIN_FLOWS = 200


@dataclass
class MonitorResult:
    """Outcome of one invariant check."""

    name: str
    ok: bool
    skipped: bool = False
    observed: Optional[float] = None
    expected: Optional[float] = None
    detail: str = ""

    @property
    def violated(self) -> bool:
        return not self.ok and not self.skipped

    def to_json(self) -> dict:
        return asdict(self)

    @staticmethod
    def from_json(payload: dict) -> "MonitorResult":
        return MonitorResult(**payload)


def _skip(name: str, why: str) -> MonitorResult:
    return MonitorResult(name=name, ok=True, skipped=True, detail=why)


class InvariantMonitor:
    """Base: a named check over registry series."""

    name = "invariant"

    def evaluate(self, registry) -> MonitorResult:
        raise NotImplementedError


class TrackedFractionMonitor(InvariantMonitor):
    """Observed tracked fraction within ``tolerance`` of |H|/(|W|+|H|)."""

    name = "tracked_fraction"

    def __init__(self, tolerance: float = DEFAULT_TOLERANCE, min_flows: int = MIN_FLOWS):
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        self.tolerance = tolerance
        self.min_flows = min_flows

    def evaluate(self, registry) -> MonitorResult:
        # Prefer the flow-weighted mean expectation: when H and W vary
        # mid-run (closed-loop autoscaling), the instantaneous gauge
        # reflects only the final sample, not what flows actually saw.
        expected = registry.value(M.EXPECTED_TRACKED_FRACTION_MEAN)
        if expected is None:
            expected = registry.value(M.EXPECTED_TRACKED_FRACTION)
        if expected is None or expected <= 0:
            return _skip(self.name, "no expectation published (not a JET run)")
        flows = registry.value(M.FLOWS) or 0
        if flows < self.min_flows:
            return _skip(self.name, f"only {flows:.0f} flows (< {self.min_flows})")
        observed = observed_tracked_fraction(registry)
        if observed is None:
            return _skip(self.name, "tracked-flow series absent")
        error = abs(observed - expected) / expected
        return MonitorResult(
            name=self.name,
            ok=error <= self.tolerance,
            observed=observed,
            expected=expected,
            detail=(
                f"|{observed:.4f} - {expected:.4f}| / {expected:.4f} "
                f"= {error:.3f} (tolerance {self.tolerance})"
            ),
        )


class PCCAccountingMonitor(InvariantMonitor):
    """violations + inevitably-broken <= flows exposed to churn."""

    name = "pcc_accounting"

    def evaluate(self, registry) -> MonitorResult:
        exposed = registry.value(M.CHURN_EXPOSED)
        if exposed is None:
            return _skip(self.name, "churn-exposure series absent")
        violations = registry.value(M.PCC_VIOLATIONS) or 0
        inevitable = registry.value(M.INEVITABLY_BROKEN) or 0
        broken = violations + inevitable
        return MonitorResult(
            name=self.name,
            ok=broken <= exposed,
            observed=broken,
            expected=exposed,
            detail=(
                f"violations {violations:.0f} + inevitable {inevitable:.0f} "
                f"vs churn-exposed {exposed:.0f}"
            ),
        )


class OccupancyBoundMonitor(InvariantMonitor):
    """CT occupancy high-water mark respects its bounds."""

    name = "ct_occupancy_bound"

    def evaluate(self, registry) -> MonitorResult:
        peak = registry.value(M.CT_OCCUPANCY_PEAK)
        if peak is None:
            return _skip(self.name, "no CT occupancy series (stateless run)")
        capacity = registry.value(M.CT_CAPACITY)
        inserts = registry.value(M.CT_INSERTS)
        # Bounded tables must honour capacity; any table's peak can never
        # exceed the number of entries ever inserted.
        bound = capacity if capacity is not None else inserts
        if bound is None:
            return _skip(self.name, "no capacity or insert series to bound by")
        label = "capacity" if capacity is not None else "total inserts"
        return MonitorResult(
            name=self.name,
            ok=peak <= bound,
            observed=peak,
            expected=bound,
            detail=f"peak occupancy {peak:.0f} vs {label} {bound:.0f}",
        )


class HorizonFidelityMonitor(InvariantMonitor):
    """Horizon precision/recall are sane (and above optional floors).

    Without floors this is a consistency check: both scores must lie in
    [0, 1].  Experiments and CI gates pass ``min_precision`` /
    ``min_recall`` for runs where forecast quality is *supposed* to be
    perfect (e.g. the perfect-forecast control smoke run)."""

    name = "horizon_fidelity"

    def __init__(
        self,
        min_precision: Optional[float] = None,
        min_recall: Optional[float] = None,
    ):
        self.min_precision = min_precision
        self.min_recall = min_recall

    def evaluate(self, registry) -> MonitorResult:
        precision = registry.value(M.HORIZON_PRECISION)
        recall = registry.value(M.HORIZON_RECALL)
        if precision is None and recall is None:
            return _skip(self.name, "no horizon fidelity series (exogenous H)")
        problems = []
        for label, value, floor in (
            ("precision", precision, self.min_precision),
            ("recall", recall, self.min_recall),
        ):
            if value is None:
                continue
            if not 0.0 <= value <= 1.0:
                problems.append(f"{label} {value:.3f} outside [0, 1]")
            elif floor is not None and value < floor:
                problems.append(f"{label} {value:.3f} below floor {floor}")
        shown = precision if precision is not None else recall
        return MonitorResult(
            name=self.name,
            ok=not problems,
            observed=shown,
            detail=(
                "; ".join(problems)
                if problems
                else (
                    f"precision={precision if precision is not None else 'n/a'} "
                    f"recall={recall if recall is not None else 'n/a'}"
                )
            ),
        )


class GossipConvergenceMonitor(InvariantMonitor):
    """Gossip CT sync converged: staleness is zero at the final snapshot.

    The sync-staleness bound: after the run settles (drain / quiet
    rounds), no live member may still be missing deltas -- anything truly
    lost must be accounted in ``repro_sync_lost_total`` instead."""

    name = "gossip_convergence"

    def __init__(self, max_staleness: float = 0.0):
        self.max_staleness = max_staleness

    def evaluate(self, registry) -> MonitorResult:
        staleness = registry.value(M.GOSSIP_STALENESS)
        if staleness is None:
            return _skip(self.name, "no gossip series (point-to-point or no sync)")
        lost = registry.value(M.SYNC_LOST) or 0
        lag = registry.value(M.GOSSIP_MEAN_LAG_ROUNDS)
        return MonitorResult(
            name=self.name,
            ok=staleness <= self.max_staleness,
            observed=staleness,
            expected=self.max_staleness,
            detail=(
                f"staleness {staleness:.0f} (bound {self.max_staleness:.0f}), "
                f"accounted lost {lost:.0f}"
                + (f", mean lag {lag:.2f} rounds" if lag is not None else "")
            ),
        )


class MonitorSuite:
    """A bundle of monitors evaluated together after (or during) a run."""

    def __init__(self, monitors: Optional[Sequence[InvariantMonitor]] = None):
        self.monitors: List[InvariantMonitor] = (
            list(monitors) if monitors is not None else default_monitors()
        )

    def evaluate(self, registry) -> List[MonitorResult]:
        return [monitor.evaluate(registry) for monitor in self.monitors]

    @staticmethod
    def violations(results: Sequence[MonitorResult]) -> List[MonitorResult]:
        return [r for r in results if r.violated]

    @staticmethod
    def render(results: Sequence[MonitorResult]) -> str:
        lines = []
        for r in results:
            status = "SKIP" if r.skipped else ("ok" if r.ok else "VIOLATION")
            lines.append(f"  [{status:>9}] {r.name}: {r.detail}")
        return "\n".join(lines)

    @staticmethod
    def to_json(results: Sequence[MonitorResult]) -> List[dict]:
        return [r.to_json() for r in results]


def default_monitors(tolerance: float = DEFAULT_TOLERANCE) -> List[InvariantMonitor]:
    return [
        TrackedFractionMonitor(tolerance=tolerance),
        PCCAccountingMonitor(),
        OccupancyBoundMonitor(),
        HorizonFidelityMonitor(),
        GossipConvergenceMonitor(),
    ]


def evaluate_and_export(
    registry,
    t: float = 0.0,
    tolerance: float = DEFAULT_TOLERANCE,
    monitors: Optional[Sequence[InvariantMonitor]] = None,
) -> List[MonitorResult]:
    """Evaluate the suite and emit the final snapshot to all exporters.

    The closing JSONL line carries ``final: true`` plus the serialized
    monitor results, which is what ``repro obs summarize --strict`` (and
    the CI invariant gate) reads back.
    """
    registry.collect()
    suite = MonitorSuite(monitors or default_monitors(tolerance=tolerance))
    results = suite.evaluate(registry)
    registry.export_snapshot(
        t=t, final=True, invariants=MonitorSuite.to_json(results)
    )
    return results
