"""Metric exporters: Prometheus text exposition and JSONL time series.

Two formats, two audiences:

- :func:`render_prometheus` / :func:`write_prometheus` -- the standard
  `text exposition format`_ (``# HELP`` / ``# TYPE`` plus samples;
  histograms expand to ``_bucket{le=...}`` / ``_sum`` / ``_count``), so
  a run's final state can be diffed, scraped, or pushed to a gateway.
- :class:`JsonlExporter` -- one JSON object per snapshot instant,
  appended as a line: ``{"t": <seconds>, "metrics": {...}}``.  The final
  line of a run carries ``"final": true`` plus the invariant-monitor
  verdicts, which is what ``repro obs summarize`` (and the CI gate)
  reads back via :func:`load_jsonl` / :func:`last_snapshot`.

.. _text exposition format:
   https://prometheus.io/docs/instrumenting/exposition_formats/
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

from repro.obs.registry import Histogram, Registry, series_name


def render_prometheus(registry: Registry) -> str:
    """Render every series in the Prometheus text exposition format."""
    registry.collect()
    lines: List[str] = []
    seen_meta = set()
    for rendered, instrument in registry.series().items():
        name = instrument.name
        if name not in seen_meta:
            seen_meta.add(name)
            help_text = registry.help_of(name)
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {registry.kind_of(name)}")
        if isinstance(instrument, Histogram):
            for le, cumulative in instrument.cumulative_buckets():
                labels = instrument.labels + (("le", le),)
                lines.append(f"{series_name(name + '_bucket', labels)} {cumulative}")
            lines.append(
                f"{series_name(name + '_sum', instrument.labels)} "
                f"{_fmt(instrument.total)}"
            )
            lines.append(
                f"{series_name(name + '_count', instrument.labels)} {instrument.count}"
            )
        else:
            lines.append(f"{rendered} {_fmt(instrument.value)}")
    return "\n".join(lines) + "\n" if lines else ""


def _fmt(value) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def write_prometheus(registry: Registry, path) -> Path:
    path = Path(path)
    path.write_text(render_prometheus(registry))
    return path


def prometheus_sibling(jsonl_path) -> Path:
    """``m.jsonl`` -> ``m.prom`` (suffix swap; append if no suffix)."""
    path = Path(jsonl_path)
    return path.with_suffix(".prom") if path.suffix else path.with_name(path.name + ".prom")


class JsonlExporter:
    """Appends one JSON line per snapshot to ``path``.

    The file is truncated on construction (an exporter belongs to one
    run) and every line is self-contained, so partial files from an
    interrupted run still parse line-by-line.
    """

    def __init__(self, path):
        self.path = Path(path)
        self._fh = open(self.path, "w")

    def write_snapshot(self, registry, t: float, **extra) -> None:
        record: Dict[str, object] = {"t": t}
        record.update(extra)
        record["metrics"] = registry.snapshot()
        self._fh.write(json.dumps(record) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JsonlExporter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def load_jsonl(path) -> List[dict]:
    """Parse every snapshot line of a JSONL metrics file."""
    records: List[dict] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def last_snapshot(records: List[dict]) -> Optional[dict]:
    """The final snapshot of a run (prefers an explicit ``final`` line)."""
    for record in reversed(records):
        if record.get("final"):
            return record
    return records[-1] if records else None
