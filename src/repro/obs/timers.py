"""Shared wall-time measurement -- one way to time everything.

Every wall-clock measurement in the repo (trace replay, the event-driven
engine, the throughput benches) goes through :class:`Stopwatch`, so
timing semantics -- ``time.perf_counter``, monotonic, fractional
seconds -- are defined in exactly one place.  The hand-rolled
``perf_counter()`` pairs these helpers replaced each re-implemented the
same three lines with subtle opportunities to diverge (wrong clock,
lost exception paths).

:class:`Stopwatch` is deliberately registry-free: hot measurement loops
must not pay for observability.  Callers that want the measurement *as a
metric* observe ``stopwatch.elapsed`` into a registry histogram after
the timed region, or use :meth:`repro.obs.registry.Registry.timer`
which bundles both.
"""

from __future__ import annotations

from time import perf_counter


class Stopwatch:
    """A restartable perf_counter stopwatch, usable as a context manager.

    >>> sw = Stopwatch()            # starts immediately
    >>> ...                         # timed region
    >>> wall = sw.stop()            # seconds, also kept in sw.elapsed

    or::

        with Stopwatch() as sw:
            ...
        wall = sw.elapsed
    """

    __slots__ = ("_started", "elapsed")

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._started = perf_counter()

    def restart(self) -> "Stopwatch":
        """Reset the start mark (for best-of-N loops reusing one watch)."""
        self._started = perf_counter()
        return self

    def stop(self) -> float:
        """Record and return seconds since construction/restart."""
        self.elapsed = perf_counter() - self._started
        return self.elapsed

    def lap(self) -> float:
        """Seconds since construction/restart, without recording."""
        return perf_counter() - self._started

    def __enter__(self) -> "Stopwatch":
        return self.restart()

    def __exit__(self, *exc) -> None:
        self.stop()


def best_of(repeats: int, func) -> float:
    """Minimum wall seconds of ``func()`` over ``max(1, repeats)`` runs.

    The shared best-of-N primitive for micro-benches: minimum (not mean)
    because scheduling noise only ever adds time.
    """
    watch = Stopwatch()
    best = float("inf")
    for _ in range(max(1, repeats)):
        watch.restart()
        func()
        best = min(best, watch.stop())
    return best
