"""``repro.obs`` -- unified observability for the whole dataplane.

One instrument panel for the reproduction: a metrics
:class:`~repro.obs.registry.Registry` (counters, gauges, fixed-bucket
histograms, timer contexts) with a true no-op
:class:`~repro.obs.registry.NullRegistry` fast path, collectors that
scrape existing dataplane counters at snapshot boundaries, live
invariant monitors that check the paper's theorems against telemetry,
and Prometheus / JSONL exporters wired into the CLI
(``--metrics-out``, ``repro obs summarize``) and the experiments.

Observability is strictly read-only: a run with a live registry makes
byte-identical routing decisions and CT state to one with the
NullRegistry (enforced by ``tests/test_obs_differential.py``), and the
disabled path stays within the never-slower throughput floor (enforced
by the throughput experiment's obs-overhead gate).
"""

from repro.obs import collectors as metrics
from repro.obs.collectors import (
    instrument_balancer,
    instrument_controller,
    observed_tracked_fraction,
)
from repro.obs.export import (
    JsonlExporter,
    last_snapshot,
    load_jsonl,
    prometheus_sibling,
    render_prometheus,
    write_prometheus,
)
from repro.obs.invariants import (
    DEFAULT_TOLERANCE,
    GossipConvergenceMonitor,
    HorizonFidelityMonitor,
    InvariantMonitor,
    MonitorResult,
    MonitorSuite,
    OccupancyBoundMonitor,
    PCCAccountingMonitor,
    TrackedFractionMonitor,
    default_monitors,
    evaluate_and_export,
)
from repro.obs.merge import GAUGE_SUM, load_series, merge_into, merge_series
from repro.obs.registry import (
    NULL,
    Counter,
    Gauge,
    Histogram,
    NullRegistry,
    Registry,
    coalesce,
)
from repro.obs.timers import Stopwatch, best_of

__all__ = [
    "metrics",
    "instrument_balancer",
    "instrument_controller",
    "observed_tracked_fraction",
    "JsonlExporter",
    "last_snapshot",
    "load_jsonl",
    "prometheus_sibling",
    "render_prometheus",
    "write_prometheus",
    "DEFAULT_TOLERANCE",
    "InvariantMonitor",
    "MonitorResult",
    "MonitorSuite",
    "GossipConvergenceMonitor",
    "HorizonFidelityMonitor",
    "OccupancyBoundMonitor",
    "PCCAccountingMonitor",
    "TrackedFractionMonitor",
    "default_monitors",
    "evaluate_and_export",
    "NULL",
    "Counter",
    "Gauge",
    "Histogram",
    "NullRegistry",
    "Registry",
    "coalesce",
    "GAUGE_SUM",
    "merge_series",
    "merge_into",
    "load_series",
    "Stopwatch",
    "best_of",
]
