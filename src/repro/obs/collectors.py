"""Collectors: scrape dataplane structural stats into a registry.

The hot paths of this repo (per-packet CT gets, CH lookups) already
maintain cheap plain-int counters -- :class:`~repro.ct.base.CTStats`,
:class:`~repro.faults.channel.SyncStats`.  Observability therefore never
adds calls inside those loops; instead a *collector* registered here
reads the structural counters at snapshot boundaries (sample events,
chunk ends, run finalization) and publishes them as registry series.
That is what makes the ``NullRegistry`` path genuinely free and the
live path O(metrics) per snapshot instead of O(packets).

Derived series are documented where they are computed; the catalogue
with semantics lives in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from typing import Optional

# ------------------------------------------------------- metric catalogue
# Connection-tracking table (scraped from CTStats).
CT_LOOKUPS = "repro_ct_lookups_total"
CT_HITS = "repro_ct_hits_total"
CT_INSERTS = "repro_ct_inserts_total"
CT_EVICTIONS = "repro_ct_evictions_total"
CT_INVALIDATIONS = "repro_ct_invalidations_total"
CT_OCCUPANCY = "repro_ct_occupancy"
CT_OCCUPANCY_PEAK = "repro_ct_occupancy_peak"
CT_CAPACITY = "repro_ct_capacity"
# Consistent-hash lookups, labelled by family (derived: one CH lookup per
# CT miss for CT-backed balancers; driver-counted for stateless).
CH_LOOKUPS = "repro_ch_lookups_total"
# Flow-level accounting (driver-published).
FLOWS = "repro_flows_total"
TRACKED_FLOWS = "repro_tracked_flows_total"
EXPECTED_TRACKED_FRACTION = "repro_expected_tracked_fraction"
#: Flow-weighted mean of |H|/(|W|+|H|) over first dispatches; published
#: by the engine when H/W vary mid-run (closed-loop runs).  Monitors
#: prefer this over the instantaneous gauge when both exist.
EXPECTED_TRACKED_FRACTION_MEAN = "repro_expected_tracked_fraction_mean"
OBSERVED_TRACKED_FRACTION = "repro_observed_tracked_fraction"
PCC_VIOLATIONS = "repro_pcc_violations_total"
#: Post-warmup maximum coefficient of variation of per-server active
#: connections (capacity-normalized on weighted fleets); published by the
#: engine, bounded by scenario envelopes (repro.scenarios).
BALANCE_CV_MAX = "repro_balance_cv_max"
#: Live per-backend active-connection gauge (label ``server=``); the
#: occupancy signal Charon-style load-aware dispatch consumes.  Published
#: only for occupancy-consuming balancers to keep label cardinality paid
#: for.
BACKEND_ACTIVE_FLOWS = "repro_backend_active_flows"
INEVITABLY_BROKEN = "repro_inevitably_broken_total"
CHURN_EXPOSED = "repro_churn_exposed_flows_total"
BACKEND_EVENTS = "repro_backend_events_total"
# Fault injection.
FAULT_EVENTS = "repro_fault_events_total"
# Dispatch-path selection and wall time.
DISPATCH_PACKETS = "repro_dispatch_packets_total"
WALL_SECONDS = "repro_wall_seconds"
# LB pool / sync channel.
POOL_MEMBERS = "repro_pool_members"
POOL_EVENTS = "repro_pool_events_total"
POOL_LOST_ENTRIES = "repro_pool_lost_entries_total"
SYNC_OFFERED = "repro_sync_offered_total"
SYNC_DELIVERED = "repro_sync_delivered_total"
SYNC_LOST_ATTEMPTS = "repro_sync_lost_attempts_total"
SYNC_UNREPLICATED = "repro_sync_unreplicated_total"
SYNC_LOST = "repro_sync_lost_total"
SYNC_ANTI_ENTROPY = "repro_sync_anti_entropy_total"
# Gossip CT replication (repro.control.gossip).
GOSSIP_ROUNDS = "repro_gossip_rounds_total"
GOSSIP_PUSHES = "repro_gossip_pushes_total"
GOSSIP_LOST_PUSHES = "repro_gossip_lost_pushes_total"
GOSSIP_TOMBSTONES = "repro_gossip_tombstones_total"
GOSSIP_STALENESS = "repro_gossip_staleness"
GOSSIP_MEAN_LAG_ROUNDS = "repro_gossip_mean_lag_rounds"
# Closed-loop control plane (repro.control).
PROBES = "repro_probes_total"
PROBE_EVICTIONS = "repro_probe_evictions_total"
PROBE_FALSE_EVICTIONS = "repro_probe_false_evictions_total"
PROBE_READMISSIONS = "repro_probe_readmissions_total"
SCALE_EVENTS = "repro_scale_events_total"
BLACKHOLED_FLOWS = "repro_blackholed_flows_total"
PHANTOM_ANNOUNCEMENTS = "repro_phantom_announcements_total"
HORIZON_OCCUPANCY = "repro_horizon_occupancy"
HORIZON_PRECISION = "repro_horizon_precision"
HORIZON_RECALL = "repro_horizon_recall"


def ch_family(ch) -> str:
    """A stable family label for a CH instance (``HRWHash`` -> ``hrw``)."""
    name = type(ch).__name__
    if name.endswith("Hash"):
        name = name[: -len("Hash")]
    return name.lower() or "unknown"


def instrument_balancer(registry, balancer) -> None:
    """Register collectors exposing a balancer stack's structural stats.

    Safe to call with any :class:`~repro.core.interfaces.LoadBalancer`:
    missing capabilities (no CT, no channel, no horizon) simply skip the
    corresponding series.  On a :class:`~repro.obs.registry.NullRegistry`
    this is a single no-op call.
    """
    if not registry.enabled:
        return
    members = getattr(balancer, "members", None)
    if members is not None:  # LB pool: per-pool series plus the channel
        _instrument_pool(registry, balancer)
        return
    _instrument_single(registry, balancer)


def _instrument_single(registry, balancer) -> None:
    ct = getattr(balancer, "ct", None)
    ch = getattr(balancer, "ch", None)
    family = ch_family(ch) if ch is not None else "none"

    def collect(reg) -> None:
        if ct is not None:
            stats = ct.stats
            reg.counter(CT_LOOKUPS, "CT lookups (gets)").set_total(stats.lookups)
            reg.counter(CT_HITS, "CT lookup hits").set_total(stats.hits)
            reg.counter(CT_INSERTS, "CT entries inserted").set_total(stats.inserts)
            reg.counter(CT_EVICTIONS, "CT entries evicted").set_total(stats.evictions)
            reg.counter(
                CT_INVALIDATIONS, "CT entries dropped by active cleanup"
            ).set_total(stats.invalidations)
            reg.gauge(CT_OCCUPANCY, "Tracked connections right now").set(len(ct))
            reg.gauge(
                CT_OCCUPANCY_PEAK, "High-water mark of tracked connections"
            ).set(stats.peak_size)
            capacity = getattr(ct, "capacity", None)
            if capacity is not None:
                reg.gauge(CT_CAPACITY, "CT table capacity bound").set(capacity)
            # Every CT miss falls through to exactly one CH lookup
            # (Algorithm 1 line 4), so the CH bill is the miss count.
            reg.counter(
                CH_LOOKUPS, "CH lookups by hash family", family=family
            ).set_total(stats.misses)
        if _is_jet(balancer):
            horizon = getattr(balancer, "horizon", None)
            working = getattr(balancer, "working", None)
            if horizon and working:
                reg.gauge(
                    EXPECTED_TRACKED_FRACTION,
                    "Theorem 4.2 expected tracked fraction |H|/(|W|+|H|)",
                ).set(len(horizon) / (len(working) + len(horizon)))

    registry.add_collector(collect)


def _instrument_pool(registry, pool) -> None:
    channel = getattr(pool, "channel", None)

    def collect(reg) -> None:
        reg.gauge(POOL_MEMBERS, "Live LB instances in the pool").set(pool.size)
        # Membership *event* counters (POOL_EVENTS) are incremented by the
        # pool itself as events happen; this collector scrapes only state.
        reg.counter(POOL_LOST_ENTRIES, "CT entries lost with departed members").set_total(
            pool.lost_entries
        )
        reg.gauge(
            "repro_pool_partitioned", "Members currently partitioned"
        ).set(pool.partitioned)
        reg.gauge(CT_OCCUPANCY, "Tracked connections right now").set(
            pool.tracked_connections
        )
        if channel is not None:
            stats = channel.stats
            reg.counter(SYNC_OFFERED, "Sync replications offered").set_total(stats.offered)
            reg.counter(SYNC_DELIVERED, "Sync entries applied at peers").set_total(
                stats.delivered
            )
            reg.counter(SYNC_LOST_ATTEMPTS, "Sync delivery attempts lost").set_total(
                stats.lost_attempts
            )
            reg.counter(
                SYNC_UNREPLICATED, "Sync entries abandoned after retries"
            ).set_total(stats.unreplicated)
            reg.counter(
                SYNC_LOST, "Sync entries that will never reach a peer"
            ).set_total(stats.lost)
            reg.counter(
                SYNC_ANTI_ENTROPY, "Entries re-offered to repair stale rejoiners"
            ).set_total(stats.anti_entropy)
            rounds = getattr(stats, "rounds", None)
            if rounds is not None:  # gossip channel: convergence series
                reg.counter(GOSSIP_ROUNDS, "Gossip rounds run").set_total(rounds)
                reg.counter(GOSSIP_PUSHES, "Gossip exchanges attempted").set_total(
                    stats.pushes
                )
                reg.counter(
                    GOSSIP_LOST_PUSHES, "Gossip exchanges the network dropped"
                ).set_total(stats.lost_pushes)
                reg.counter(
                    GOSSIP_TOMBSTONES, "Deletion deltas applied at peers"
                ).set_total(stats.tombstones)
                reg.gauge(
                    GOSSIP_STALENESS,
                    "Undelivered (member, delta) pairs right now",
                ).set(channel.staleness())
                reg.gauge(
                    GOSSIP_MEAN_LAG_ROUNDS,
                    "Mean dissemination lag in rounds (delta birth -> apply)",
                ).set(stats.mean_lag_rounds)

    registry.add_collector(collect)


def instrument_controller(registry, controller) -> None:
    """Register collectors for a :class:`~repro.control.loop.ControlLoop`
    (prober counters, scale events, horizon fidelity)."""
    if not registry.enabled:
        return
    prober = controller.prober
    autoscaler = controller.autoscaler

    def collect(reg) -> None:
        stats = prober.stats
        reg.counter(PROBES, "Health probes sent").set_total(stats.sent)
        reg.counter(PROBE_EVICTIONS, "Probe-evidence evictions").set_total(
            stats.evictions
        )
        reg.counter(
            PROBE_FALSE_EVICTIONS, "Evictions of servers that were up"
        ).set_total(stats.false_evictions)
        reg.counter(PROBE_READMISSIONS, "Probe-confirmed readmissions").set_total(
            stats.readmissions
        )
        reg.counter(
            SCALE_EVENTS, "Autoscaler decisions by kind", kind="out"
        ).set_total(autoscaler.scale_outs)
        reg.counter(
            SCALE_EVENTS, "Autoscaler decisions by kind", kind="in"
        ).set_total(autoscaler.scale_ins)

    registry.add_collector(collect)


def _is_jet(balancer) -> bool:
    """True for balancers that track only *unsafe* connections, i.e. the
    ones Theorem 4.2's |H|/(|W|+|H|) expectation applies to."""
    from repro.core.jet import JETLoadBalancer

    return isinstance(balancer, JETLoadBalancer)


def observed_tracked_fraction(registry) -> Optional[float]:
    """Tracked-on-first-dispatch flows over all flows, or None if unknown."""
    flows = registry.value(FLOWS)
    tracked = registry.value(TRACKED_FLOWS)
    if not flows:
        return None
    return (tracked or 0) / flows
