"""Metrics registry -- named counters, gauges, and fixed-bucket histograms.

The observability layer follows the Prometheus data model, trimmed to
what a reproduction needs:

- :class:`Counter` -- a monotonically growing total.  Collectors that
  scrape an existing cheap counter (e.g. :class:`~repro.ct.base.CTStats`)
  use :meth:`Counter.set_total` to publish the cumulative value instead
  of double-counting increments.
- :class:`Gauge` -- a value that can go up and down (occupancy, ratios).
- :class:`Histogram` -- fixed upper-bound buckets plus sum and count
  (wall-time distributions).

Series are keyed by ``(name, sorted label items)``, so
``registry.counter("repro_ch_lookups_total", family="hrw")`` and the same
name with ``family="ring"`` are independent series, exactly as in
Prometheus exposition.

Two registries implement the same surface:

- :class:`Registry` -- the live one; it also carries *collectors*
  (callbacks that scrape structural stats right before a snapshot or
  render) and optional snapshot listeners (exporters).
- :class:`NullRegistry` -- the disabled fast path.  Every instrument it
  hands out is a shared singleton whose mutators are no-ops, snapshots
  return nothing, and ``enabled`` is False so instrumented drivers can
  skip optional work (extra bookkeeping, snapshot emission) entirely.
  Instrumentation is deliberately placed at *event and batch boundaries*,
  never inside per-packet hot loops, so a NullRegistry run costs nothing
  measurable -- the guarantee the throughput experiment's obs-overhead
  gate enforces.

Observability must never change behaviour: instruments only read the
dataplane, and the differential test suite holds every stack to
byte-identical decisions with and without a live registry.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Optional, Tuple

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram upper bounds, tuned for wall-time in seconds.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)

#: A series key: metric name plus a canonical (sorted) label tuple.
SeriesKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _series_key(name: str, labels: Dict[str, str]) -> SeriesKey:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


def series_name(name: str, labels: Iterable[Tuple[str, str]]) -> str:
    """Render ``name{k="v",...}`` (plain ``name`` when unlabelled)."""
    items = list(labels)
    if not items:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in items)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def set_total(self, total: float) -> None:
        """Publish a cumulative total scraped from an external counter.

        Collectors use this to mirror existing dataplane counters
        (``CTStats``, ``SyncStats``) without the dataplane ever calling
        into the registry.  Totals may only grow.
        """
        if total < self.value:
            raise ValueError(
                f"{self.name}: counter total went backwards "
                f"({total} < {self.value})"
            )
        self.value = total


class Gauge:
    """A value that can move in either direction."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with cumulative-on-render semantics.

    ``bounds`` are inclusive upper bounds; an implicit +Inf bucket
    catches the rest.  Observation is O(log buckets) via bisect.
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "total", "count")

    def __init__(
        self,
        name: str,
        bounds: Tuple[float, ...] = DEFAULT_TIME_BUCKETS,
        labels: Tuple[Tuple[str, str], ...] = (),
    ):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be a sorted non-empty sequence")
        self.name = name
        self.labels = labels
        self.bounds = tuple(float(b) for b in bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # +Inf last
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    def cumulative_buckets(self) -> List[Tuple[str, int]]:
        """``(le, cumulative_count)`` pairs, Prometheus-style."""
        out: List[Tuple[str, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.bucket_counts):
            running += n
            out.append((format(bound, "g"), running))
        out.append(("+Inf", running + self.bucket_counts[-1]))
        return out


class _Timer:
    """Context manager that observes elapsed wall time into a histogram."""

    __slots__ = ("_histogram", "_started", "elapsed")

    def __init__(self, histogram: Histogram):
        self._histogram = histogram
        self._started = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "_Timer":
        from time import perf_counter

        self._started = perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        from time import perf_counter

        self.elapsed = perf_counter() - self._started
        self._histogram.observe(self.elapsed)


class Registry:
    """A live metrics registry: instruments, collectors, exporters."""

    enabled = True

    def __init__(self) -> None:
        self._series: Dict[SeriesKey, object] = {}
        self._kinds: Dict[str, str] = {}  # metric name -> counter|gauge|histogram
        self._help: Dict[str, str] = {}
        self._collectors: List[Callable[["Registry"], None]] = []
        self._exporters: List[object] = []

    # -------------------------------------------------------- instruments
    def _get(self, kind: str, cls, name: str, help: str, labels: Dict[str, str], **kwargs):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        known = self._kinds.get(name)
        if known is None:
            self._kinds[name] = kind
            if help:
                self._help[name] = help
        elif known != kind:
            raise ValueError(f"metric {name!r} already registered as a {known}")
        for label in labels:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        key = _series_key(name, labels)
        instrument = self._series.get(key)
        if instrument is None:
            instrument = cls(name, labels=key[1], **kwargs)
            self._series[key] = instrument
        return instrument

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get("counter", Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._get("gauge", Gauge, name, help, labels)

    def histogram(
        self, name: str, help: str = "", buckets: Optional[Tuple[float, ...]] = None, **labels
    ) -> Histogram:
        kwargs = {"bounds": tuple(buckets)} if buckets else {}
        return self._get("histogram", Histogram, name, help, labels, **kwargs)

    def timer(self, name: str, help: str = "", **labels) -> _Timer:
        """A context manager observing wall seconds into ``name``."""
        return _Timer(self.histogram(name, help, **labels))

    # --------------------------------------------------------- collectors
    def add_collector(self, fn: Callable[["Registry"], None]) -> None:
        """Register a scrape callback, run before every snapshot/render."""
        self._collectors.append(fn)

    def collect(self) -> None:
        for fn in self._collectors:
            fn(self)

    # ---------------------------------------------------------- exporters
    def attach_exporter(self, exporter) -> None:
        """Attach an object with ``write_snapshot(registry, t, **extra)``."""
        self._exporters.append(exporter)

    def export_snapshot(self, t: float, **extra) -> None:
        """Push one time-series point to every attached exporter."""
        for exporter in self._exporters:
            exporter.write_snapshot(self, t, **extra)

    # ------------------------------------------------------------ reading
    def value(self, name: str, **labels) -> Optional[float]:
        """Current value of a counter/gauge series, or None if absent."""
        instrument = self._series.get(_series_key(name, labels))
        if instrument is None or isinstance(instrument, Histogram):
            return None
        return instrument.value

    def series(self) -> Dict[str, object]:
        """All series in registration order: rendered name -> instrument."""
        return {
            series_name(name, key_labels): instrument
            for (name, key_labels), instrument in self._series.items()
        }

    def kind_of(self, name: str) -> Optional[str]:
        return self._kinds.get(name)

    def help_of(self, name: str) -> str:
        return self._help.get(name, "")

    def snapshot(self) -> Dict[str, object]:
        """Collect, then flatten every series to plain JSON-able values."""
        self.collect()
        out: Dict[str, object] = {}
        for rendered, instrument in self.series().items():
            if isinstance(instrument, Histogram):
                out[rendered] = {
                    "count": instrument.count,
                    "sum": instrument.total,
                    "buckets": dict(instrument.cumulative_buckets()),
                }
            else:
                out[rendered] = instrument.value
        return out

    def dump_series(self, collect: bool = True) -> List[Dict[str, object]]:
        """Every series as plain picklable dicts, for cross-process merging.

        Unlike :meth:`snapshot` (rendered names, cumulative buckets), this
        keeps name/labels/kind structured and histograms raw, so
        :mod:`repro.obs.merge` can combine dumps from shard workers
        kind-aware and load them into a parent registry losslessly.
        """
        if collect:
            self.collect()
        out: List[Dict[str, object]] = []
        for (name, key_labels), instrument in self._series.items():
            entry: Dict[str, object] = {
                "name": name,
                "kind": self._kinds[name],
                "help": self._help.get(name, ""),
                "labels": dict(key_labels),
            }
            if isinstance(instrument, Histogram):
                entry["bounds"] = list(instrument.bounds)
                entry["bucket_counts"] = list(instrument.bucket_counts)
                entry["sum"] = instrument.total
                entry["count"] = instrument.count
            else:
                entry["value"] = instrument.value
            out.append(entry)
        return out


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram/timer."""

    __slots__ = ()
    name = "null"
    labels = ()
    value = 0
    count = 0
    total = 0.0
    elapsed = 0.0

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_total(self, total: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def __enter__(self) -> "_NullInstrument":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The disabled observability fast path: every call is a no-op.

    Hands out one shared inert instrument, never stores anything, and
    reports ``enabled = False`` so drivers skip optional bookkeeping.
    A module-level singleton (:data:`NULL`) avoids even the allocation.
    """

    enabled = False

    def counter(self, name: str, help: str = "", **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "", **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, help: str = "", buckets=None, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def timer(self, name: str, help: str = "", **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def add_collector(self, fn) -> None:
        pass

    def collect(self) -> None:
        pass

    def attach_exporter(self, exporter) -> None:
        pass

    def export_snapshot(self, t: float, **extra) -> None:
        pass

    def value(self, name: str, **labels) -> None:
        return None

    def series(self) -> Dict[str, object]:
        return {}

    def kind_of(self, name: str) -> None:
        return None

    def help_of(self, name: str) -> str:
        return ""

    def snapshot(self) -> Dict[str, object]:
        return {}

    def dump_series(self, collect: bool = True) -> List[Dict[str, object]]:
        return []


#: The process-wide disabled registry; use instead of allocating one.
NULL = NullRegistry()


def coalesce(registry) -> "Registry":
    """``registry`` if given, else the shared :data:`NULL` no-op."""
    return NULL if registry is None else registry
