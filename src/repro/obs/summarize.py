"""``repro obs summarize`` -- inspect a JSONL metrics artifact.

Reads the time series a run emitted via ``--metrics-out``, prints the
final value of every series plus the recorded invariant-monitor
verdicts, and (with ``--strict``) exits non-zero when any monitor
reported a violation.  CI uses the strict mode as its invariant gate:
the run itself only *records* verdicts, so a red gate always points at a
concrete artifact that can be downloaded and re-summarized locally.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.obs.export import last_snapshot, load_jsonl
from repro.obs.invariants import MonitorResult, MonitorSuite


def summarize(path) -> dict:
    """Digest a JSONL metrics file into {series, invariants, snapshots}.

    Invariant verdicts aggregate over *every* snapshot that recorded any
    (a multi-run artifact -- e.g. the scenario matrix writes one final
    snapshot per scenario -- must not let early violations hide behind a
    clean last run); the metrics digest stays the final snapshot's.
    """
    records = load_jsonl(path)
    final = last_snapshot(records)
    invariants = [
        MonitorResult.from_json(item)
        for record in records
        for item in record.get("invariants", [])
    ]
    return {
        "path": str(path),
        "snapshots": len(records),
        "final_t": (final or {}).get("t"),
        "metrics": (final or {}).get("metrics", {}),
        "invariants": invariants,
    }


def format_summary(digest: dict) -> str:
    lines = [
        f"{digest['path']}: {digest['snapshots']} snapshot(s), "
        f"final at t={digest['final_t']}"
    ]
    for name, value in sorted(digest["metrics"].items()):
        if isinstance(value, dict):  # histogram
            lines.append(
                f"  {name}: count={value.get('count')} sum={value.get('sum'):.6g}"
            )
        else:
            lines.append(f"  {name}: {value:g}" if isinstance(value, float) else f"  {name}: {value}")
    invariants: List[MonitorResult] = digest["invariants"]
    if invariants:
        lines.append("invariant monitors:")
        lines.append(MonitorSuite.render(invariants))
    else:
        lines.append("invariant monitors: none recorded")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro obs summarize",
        description="summarize a JSONL metrics artifact",
    )
    parser.add_argument("path", help="metrics JSONL file written by --metrics-out")
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 if any recorded invariant monitor reported a violation",
    )
    args = parser.parse_args(argv)
    digest = summarize(args.path)
    print(format_summary(digest))
    violated = MonitorSuite.violations(digest["invariants"])
    if violated:
        print(f"{len(violated)} invariant violation(s)")
        if args.strict:
            return 1
    return 0
